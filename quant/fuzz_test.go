package quant

import (
	"testing"
)

// Native fuzz targets for the wire decoders. Under plain `go test` the
// seed corpus runs as regression tests; `go test -fuzz=FuzzX` explores
// further. The invariant in every case: Decode must either return an
// error or fill dst — it must never panic or index out of range, no
// matter what bytes arrive (a corrupted peer must not crash training).

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{0, 0, 0, 0}, uint16(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}, uint16(7))
	f.Add(make([]byte, 64), uint16(32))
	f.Add([]byte{0x80, 0x3f, 0, 0, 0xaa, 0x55, 0xaa, 0x55, 1, 0, 0, 0}, uint16(13))
}

func fuzzDecode(f *testing.F, c Codec) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, wire []byte, nRaw uint16) {
		n := int(nRaw%512) + 1
		shape := Shape{Rows: n%31 + 1, Cols: (n / (n%31 + 1)) + 1}
		dst := make([]float32, n)
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%s: decode panicked: %v", c.Name(), p)
			}
		}()
		_ = c.Decode(wire, n, shape, dst) // error return is fine
	})
}

func FuzzQSGDDecode(f *testing.F)   { fuzzDecode(f, NewQSGD(4, 64, MaxNorm)) }
func FuzzQSGD2Decode(f *testing.F)  { fuzzDecode(f, NewQSGD(2, 128, MaxNorm)) }
func FuzzOneBitDecode(f *testing.F) { fuzzDecode(f, OneBit{}) }
func FuzzOneBitReshapedDecode(f *testing.F) {
	fuzzDecode(f, NewOneBitReshaped(64))
}
func FuzzTopKDecode(f *testing.F) { fuzzDecode(f, NewTopK(0.1)) }
func FuzzFP32Decode(f *testing.F) { fuzzDecode(f, FP32{}) }
func FuzzExponentialDecode(f *testing.F) {
	fuzzDecode(f, NewQSGDScheme(8, 256, MaxNorm, Exponential))
}

// FuzzPolicyRoundTrip mirrors the frame fuzz for the policy grammar:
// ParsePolicy must never panic, and whenever it accepts an input, the
// canonical Name() must re-parse to the same canonical spelling — the
// invariant cluster negotiation and every capability exchange rely on.
func FuzzPolicyRoundTrip(f *testing.F) {
	f.Add("32bit")
	f.Add("qsgd4b512")
	f.Add("qsgd4;minfrac=0.99")
	f.Add("qsgd4b512;minfrac=0.95;embedding=topk0.001;*.b=32bit")
	f.Add("1bit*;conv?.W=qsgd8")
	f.Add("topk0.01;minfrac=1;bn1=fp32")
	f.Add("qsgd4;;")
	f.Add("florp;a=b")
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParsePolicy(name)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		canon := p.Name()
		rt, err := ParsePolicy(canon)
		if err != nil {
			t.Fatalf("accepted %q but canonical %q does not re-parse: %v", name, canon, err)
		}
		if rt.Name() != canon {
			t.Fatalf("%q: canonical name not a fixed point: %q -> %q", name, canon, rt.Name())
		}
	})
}
