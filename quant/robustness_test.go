package quant

import (
	"testing"
	"testing/quick"

	"repro/rng"
)

// TestDecodeNeverPanicsOnRandomBytes: feeding correctly sized but
// random wire buffers must decode to garbage values or fail with an
// error — never panic or write out of bounds. (The aggregation layer
// trusts codec output lengths, so codecs must be defensive about
// content.)
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	r := rng.New(60)
	for _, c := range append(allCodecs(), NewTopK(0.1), NewTopK(1)) {
		for trial := 0; trial < 30; trial++ {
			n := 1 + r.Intn(600)
			shape := Shape{Rows: 1 + r.Intn(40), Cols: 1 + r.Intn(20)}
			want := c.EncodedBytes(n, shape)
			wire := make([]byte, want)
			for i := range wire {
				wire[i] = byte(r.Uint32())
			}
			dst := make([]float32, n)
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: panic on random wire (n=%d shape=%v): %v",
							c.Name(), n, shape, p)
					}
				}()
				_ = c.Decode(wire, n, shape, dst) // error is acceptable
			}()
		}
	}
}

// TestDecodeRejectsAllWrongLengths: every codec must reject buffers of
// any length other than the exact one.
func TestDecodeRejectsAllWrongLengths(t *testing.T) {
	r := rng.New(61)
	for _, c := range allCodecs() {
		n := 100
		shape := Shape{Rows: 10, Cols: 10}
		want := c.EncodedBytes(n, shape)
		for _, delta := range []int{-want, -7, -1, 1, 13} {
			if want+delta < 0 {
				continue
			}
			wire := make([]byte, want+delta)
			for i := range wire {
				wire[i] = byte(r.Uint32())
			}
			if err := c.Decode(wire, n, shape, make([]float32, n)); err == nil {
				t.Errorf("%s: accepted wire of length %d (want %d)", c.Name(), want+delta, want)
			}
		}
	}
}

// TestEncodedBytesAdditiveAcrossGroupBoundaries: cutting a vector at a
// group boundary must not change the total wire size — the invariant
// that makes reduce-and-broadcast's stripe accounting exact.
func TestEncodedBytesAdditiveAcrossGroupBoundaries(t *testing.T) {
	for _, c := range allCodecs() {
		shape := Shape{Rows: 32, Cols: 100}
		g := c.GroupSize(shape)
		f := func(aRaw, bRaw uint8) bool {
			a := int(aRaw%20) * g         // group-aligned prefix
			b := int(bRaw%50)*g + g/2 + 1 // arbitrary tail
			whole := c.EncodedBytes(a+b, shape)
			split := c.EncodedBytes(a, shape) + c.EncodedBytes(b, shape)
			return whole == split
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestEncodedBytesMonotone: more elements never need fewer bytes.
func TestEncodedBytesMonotone(t *testing.T) {
	for _, c := range append(allCodecs(), NewTopK(0.05)) {
		shape := Shape{Rows: 16, Cols: 64}
		prev := -1
		for n := 0; n <= 1024; n += 16 {
			got := c.EncodedBytes(n, shape)
			if got < prev {
				t.Errorf("%s: EncodedBytes(%d)=%d < EncodedBytes(%d)=%d",
					c.Name(), n, got, n-16, prev)
			}
			prev = got
		}
	}
}

// TestRoundtripArbitraryShapes: property test over random shapes and
// contents — every codec must roundtrip without error and produce
// finite values for finite inputs.
func TestRoundtripArbitraryShapes(t *testing.T) {
	r := rng.New(62)
	f := func(seed uint16) bool {
		rr := r.Fork(uint64(seed))
		rows := 1 + rr.Intn(64)
		cols := 1 + rr.Intn(16)
		shape := Shape{Rows: rows, Cols: cols}
		n := shape.Len()
		src := make([]float32, n)
		for i := range src {
			src[i] = rr.Norm(3)
		}
		for _, c := range allCodecs() {
			wire := c.NewEncoder(n, shape, uint64(seed)).Encode(src)
			dst := make([]float32, n)
			if err := c.Decode(wire, n, shape, dst); err != nil {
				return false
			}
			for _, v := range dst {
				if v != v { // NaN
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEncoderReusableAcrossManyRounds: encoders must stay correct over
// long training runs (buffer reuse, residual growth).
func TestEncoderReusableAcrossManyRounds(t *testing.T) {
	r := rng.New(63)
	const n = 320
	shape := Shape{Rows: 32, Cols: 10}
	for _, c := range allCodecs() {
		enc := c.NewEncoder(n, shape, 1)
		dst := make([]float32, n)
		for round := 0; round < 200; round++ {
			src := randVec(r, n)
			wire := enc.Encode(src)
			if len(wire) != c.EncodedBytes(n, shape) {
				t.Fatalf("%s: wire size drifted at round %d", c.Name(), round)
			}
			if err := c.Decode(wire, n, shape, dst); err != nil {
				t.Fatalf("%s: decode failed at round %d: %v", c.Name(), round, err)
			}
		}
	}
}
