package quant

import (
	"math"
	"testing"

	"repro/rng"
)

func randVec(r *rng.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.Norm(1)
	}
	return v
}

// allCodecs returns one instance of every codec family for generic tests.
func allCodecs() []Codec {
	return []Codec{
		FP32{},
		OneBit{},
		NewOneBitReshaped(64),
		NewOneBitReshaped(512),
		NewQSGD(2, 128, MaxNorm),
		NewQSGD(4, 512, MaxNorm),
		NewQSGD(8, 512, MaxNorm),
		NewQSGD(16, 8192, MaxNorm),
		NewQSGD(4, 512, TwoNorm),
		NewQSGDScheme(4, 512, MaxNorm, Uniform),
		NewQSGDScheme(8, 256, TwoNorm, Uniform),
	}
}

// TestEncodedBytesMatchesWire verifies EncodedBytes == len(Encode(...))
// for every codec across many sizes, including non-multiple-of-group
// tails. The simulator prices communication with EncodedBytes, so this
// equality is load-bearing for the whole performance study.
func TestEncodedBytesMatchesWire(t *testing.T) {
	r := rng.New(1)
	sizes := []int{1, 3, 31, 32, 33, 63, 64, 65, 127, 128, 500, 512, 513, 4096, 10000}
	for _, c := range allCodecs() {
		for _, n := range sizes {
			shape := Shape{Rows: 10, Cols: (n + 9) / 10}
			src := randVec(r, n)
			enc := c.NewEncoder(n, shape, 7)
			wire := enc.Encode(src)
			if got, want := len(wire), c.EncodedBytes(n, shape); got != want {
				t.Errorf("%s n=%d: wire %d bytes, EncodedBytes says %d", c.Name(), n, got, want)
			}
		}
	}
}

// TestDecodeLengthChecks verifies codecs reject malformed wire buffers.
func TestDecodeLengthChecks(t *testing.T) {
	for _, c := range allCodecs() {
		n := 100
		shape := Shape{Rows: 10, Cols: 10}
		dst := make([]float32, n)
		if err := c.Decode(make([]byte, 1), n, shape, dst); err == nil {
			t.Errorf("%s: expected error for short wire", c.Name())
		}
		good := c.NewEncoder(n, shape, 1).Encode(make([]float32, n))
		if err := c.Decode(good, n, shape, make([]float32, n+1)); err == nil {
			t.Errorf("%s: expected error for wrong dst length", c.Name())
		}
	}
}

func TestFP32Roundtrip(t *testing.T) {
	r := rng.New(2)
	src := randVec(r, 777)
	c := FP32{}
	shape := Shape{Rows: 7, Cols: 111}
	wire := c.NewEncoder(len(src), shape, 0).Encode(src)
	dst := make([]float32, len(src))
	if err := c.Decode(wire, len(src), shape, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("fp32 roundtrip not exact at %d: %v != %v", i, src[i], dst[i])
		}
	}
}

func TestFP32SpecialValues(t *testing.T) {
	src := []float32{0, float32(math.Inf(1)), float32(math.Inf(-1)), -0, 1e-38, 3.4e38}
	c := FP32{}
	shape := Shape{Rows: len(src), Cols: 1}
	wire := c.NewEncoder(len(src), shape, 0).Encode(src)
	dst := make([]float32, len(src))
	if err := c.Decode(wire, len(src), shape, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(src[i]) != math.Float32bits(dst[i]) {
			t.Fatalf("fp32 special value %d not preserved", i)
		}
	}
}

// TestDeterministicEncoding: the same encoder sequence produces identical
// wire bytes on repeated construction — the reproducibility invariant.
func TestDeterministicEncoding(t *testing.T) {
	r := rng.New(3)
	src1 := randVec(r, 1000)
	src2 := randVec(r, 1000)
	for _, c := range allCodecs() {
		shape := Shape{Rows: 10, Cols: 100}
		e1 := c.NewEncoder(1000, shape, 99)
		e2 := c.NewEncoder(1000, shape, 99)
		for _, src := range [][]float32{src1, src2} {
			w1 := append([]byte(nil), e1.Encode(src)...)
			w2 := append([]byte(nil), e2.Encode(src)...)
			if string(w1) != string(w2) {
				t.Errorf("%s: nondeterministic encoding", c.Name())
			}
		}
	}
}

// TestCompressionRatios checks the exact wire arithmetic the paper's
// performance analysis rests on.
func TestCompressionRatios(t *testing.T) {
	cases := []struct {
		codec Codec
		shape Shape
		want  float64
		tol   float64
	}{
		// QSGD 4-bit bucket 512: (512*4)/(4+256) ≈ 7.88×.
		{NewQSGD(4, 512, MaxNorm), Shape{Rows: 512, Cols: 100}, 7.88, 0.01},
		// QSGD 8-bit bucket 512: 2048/(4+512) ≈ 3.97×.
		{NewQSGD(8, 512, MaxNorm), Shape{Rows: 512, Cols: 100}, 3.97, 0.01},
		// QSGD 2-bit bucket 128: 512/(4+32) ≈ 14.2×.
		{NewQSGD(2, 128, MaxNorm), Shape{Rows: 128, Cols: 100}, 14.22, 0.01},
		// 1bit* bucket 64: 256/(8+8) = 16×.
		{NewOneBitReshaped(64), Shape{Rows: 64, Cols: 100}, 16, 0.01},
		// Classic 1bit on a 4096-row FC matrix: 16384/(8+512) ≈ 31.5×.
		{OneBit{}, Shape{Rows: 4096, Cols: 4096}, 31.5, 0.1},
		// Classic 1bit on a 3-row conv kernel: 12/(8+4) = 1.0× — the
		// paper's "no communication reduction" artefact.
		{OneBit{}, Shape{Rows: 3, Cols: 1000}, 1.0, 0.01},
		// FP32 is exactly 1×.
		{FP32{}, Shape{Rows: 100, Cols: 100}, 1.0, 0},
	}
	for _, tc := range cases {
		got := CompressionRatio(tc.codec, tc.shape)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s %v: ratio %.3f, want %.3f±%.3f",
				tc.codec.Name(), tc.shape, got, tc.want, tc.tol)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c == nil {
			t.Fatalf("ByName(%q) returned nil codec", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

func TestPaperCodecsOrder(t *testing.T) {
	cs := PaperCodecs()
	if len(cs) != 7 {
		t.Fatalf("want 7 paper codecs, got %d", len(cs))
	}
	if cs[0].Name() != "32bit" || cs[6].Name() != "1bit" {
		t.Fatalf("unexpected ladder order: %s ... %s", cs[0].Name(), cs[6].Name())
	}
}

func TestGroupSizes(t *testing.T) {
	shape := Shape{Rows: 37, Cols: 5}
	if g := (OneBit{}).GroupSize(shape); g != 37 {
		t.Errorf("OneBit group = %d, want rows=37", g)
	}
	if g := NewOneBitReshaped(64).GroupSize(shape); g != 64 {
		t.Errorf("reshaped group = %d, want 64", g)
	}
	if g := NewQSGD(4, 512, MaxNorm).GroupSize(shape); g != 512 {
		t.Errorf("qsgd group = %d, want 512", g)
	}
}

func TestZeroLengthVectors(t *testing.T) {
	for _, c := range allCodecs() {
		shape := Shape{Rows: 1, Cols: 0}
		if got := c.EncodedBytes(0, shape); got != 0 {
			t.Errorf("%s: EncodedBytes(0) = %d", c.Name(), got)
		}
		wire := c.NewEncoder(0, shape, 0).Encode(nil)
		if len(wire) != 0 {
			t.Errorf("%s: empty encode produced %d bytes", c.Name(), len(wire))
		}
		if err := c.Decode(wire, 0, shape, nil); err != nil {
			t.Errorf("%s: empty decode failed: %v", c.Name(), err)
		}
	}
}

func BenchmarkEncodeQSGD4(b *testing.B) {
	r := rng.New(1)
	src := randVec(r, 1<<20)
	c := NewQSGD(4, 512, MaxNorm)
	shape := Shape{Rows: 1024, Cols: 1024}
	e := c.NewEncoder(len(src), shape, 1)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(src)
	}
}

func BenchmarkEncodeOneBit(b *testing.B) {
	r := rng.New(1)
	src := randVec(r, 1<<20)
	c := NewOneBitReshaped(64)
	shape := Shape{Rows: 1024, Cols: 1024}
	e := c.NewEncoder(len(src), shape, 1)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(src)
	}
}

func BenchmarkDecodeQSGD4(b *testing.B) {
	r := rng.New(1)
	src := randVec(r, 1<<20)
	c := NewQSGD(4, 512, MaxNorm)
	shape := Shape{Rows: 1024, Cols: 1024}
	wire := c.NewEncoder(len(src), shape, 1).Encode(src)
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decode(wire, len(src), shape, dst); err != nil {
			b.Fatal(err)
		}
	}
}
