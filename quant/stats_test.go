package quant

import (
	"math"
	"testing"

	"repro/rng"
)

func TestMeasureErrorFP32Lossless(t *testing.T) {
	r := rng.New(70)
	src := randVec(r, 512)
	s := MeasureError(FP32{}, src, Shape{Rows: 512, Cols: 1}, 5, 1)
	if s.RMSE != 0 || s.MeanAbsBias != 0 {
		t.Fatalf("fp32 should be lossless: %+v", s)
	}
	if s.CompressionRatio != 1 {
		t.Fatalf("fp32 ratio %v", s.CompressionRatio)
	}
}

func TestMeasureErrorQSGDUnbiasedOverRounds(t *testing.T) {
	r := rng.New(71)
	src := randVec(r, 256)
	shape := Shape{Rows: 256, Cols: 1}
	s := MeasureError(NewQSGD(4, 128, MaxNorm), src, shape, 2000, 2)
	if s.RMSE <= 0 {
		t.Fatal("QSGD must have nonzero per-round error")
	}
	// Bias shrinks as 1/sqrt(rounds); with 2000 rounds it is small
	// relative to the per-round RMSE.
	if s.MeanAbsBias > s.RMSE/5 {
		t.Fatalf("bias %v too large vs RMSE %v", s.MeanAbsBias, s.RMSE)
	}
}

func TestMeasureErrorMoreBitsLessError(t *testing.T) {
	r := rng.New(72)
	src := randVec(r, 1024)
	shape := Shape{Rows: 1024, Cols: 1}
	prev := 1e9
	for _, bits := range []int{2, 4, 8} {
		s := MeasureError(NewQSGD(bits, 512, MaxNorm), src, shape, 20, 3)
		if s.RMSE >= prev {
			t.Fatalf("bits=%d: RMSE %v did not shrink", bits, s.RMSE)
		}
		prev = s.RMSE
	}
}

func TestMeasureErrorOneBitBiasShrinksWithRounds(t *testing.T) {
	// Error feedback makes the *long-run average* converge even though
	// single rounds are heavily distorted.
	r := rng.New(73)
	src := randVec(r, 256)
	shape := Shape{Rows: 64, Cols: 4}
	short := MeasureError(NewOneBitReshaped(64), src, shape, 2, 4)
	long := MeasureError(NewOneBitReshaped(64), src, shape, 400, 4)
	if long.MeanAbsBias >= short.MeanAbsBias {
		t.Fatalf("error feedback bias did not shrink: %v -> %v",
			short.MeanAbsBias, long.MeanAbsBias)
	}
}

func TestMeasureErrorDegenerate(t *testing.T) {
	s := MeasureError(FP32{}, nil, Shape{}, 5, 0)
	if s.CompressionRatio != 1 {
		t.Fatal("empty input should be neutral")
	}
	s = MeasureError(FP32{}, []float32{1}, Shape{Rows: 1, Cols: 1}, 0, 0)
	if s.RMSE != 0 {
		t.Fatal("zero rounds should be neutral")
	}
}

// TestGradNorms pins the norm helper against hand-computed values and
// the empty/degenerate cases.
func TestGradNorms(t *testing.T) {
	l2, inf := GradNorms(nil)
	if l2 != 0 || inf != 0 {
		t.Fatalf("empty: l2=%v inf=%v", l2, inf)
	}
	l2, inf = GradNorms([]float32{3, -4})
	if math.Abs(l2-5) > 1e-12 || inf != 4 {
		t.Fatalf("3,-4: l2=%v inf=%v", l2, inf)
	}
	l2, inf = GradNorms([]float32{-2, 0, 2, 1})
	if math.Abs(l2-3) > 1e-12 || inf != 2 {
		t.Fatalf("-2,0,2,1: l2=%v inf=%v", l2, inf)
	}
}
