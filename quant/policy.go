package quant

import (
	"fmt"
	"sort"
)

// TensorInfo names one gradient tensor of a model together with its CNTK
// layout shape. The workload package produces inventories of these for
// every network in the study.
type TensorInfo struct {
	Name  string
	Shape Shape
}

// Plan assigns a codec to every gradient tensor of a model, implementing
// the paper's small-matrix exemption (§3.2.2): tensors whose element
// count falls below a threshold are sent at full precision, because for
// them quantisation costs kernel time without saving meaningful
// bandwidth. The threshold is chosen so that at least MinFraction of all
// parameters remain quantised (the paper uses >99 %).
type Plan struct {
	// Quantised is the codec used for large tensors.
	Quantised Codec
	// Fallback is used below the threshold (always full precision).
	Fallback Codec
	// Threshold is the minimum element count for quantisation.
	Threshold int
	// MinFraction is the requested quantised-parameter fraction.
	MinFraction float64

	tensors []TensorInfo
	codecs  []Codec
}

// NewPlan builds the codec assignment for the given tensor inventory.
// It picks the largest threshold that still quantises at least minFrac of
// all parameters; with minFrac ≥ 1 every tensor is quantised. A full-
// precision base codec yields a plan that sends everything raw.
func NewPlan(c Codec, tensors []TensorInfo, minFrac float64) *Plan {
	p := &Plan{
		Quantised:   c,
		Fallback:    FP32{},
		MinFraction: minFrac,
		tensors:     tensors,
		codecs:      make([]Codec, len(tensors)),
	}
	if _, isFP := c.(FP32); isFP {
		for i := range p.codecs {
			p.codecs[i] = c
		}
		return p
	}
	var total int64
	sizes := make([]int, len(tensors))
	for i, t := range tensors {
		sizes[i] = t.Shape.Len()
		total += int64(sizes[i])
	}
	// Candidate thresholds are the distinct tensor sizes; pick the
	// largest one whose cumulative quantised mass still meets minFrac.
	uniq := append([]int(nil), sizes...)
	sort.Ints(uniq)
	threshold := 0
	for i := len(uniq) - 1; i >= 0; i-- {
		cand := uniq[i]
		var quantised int64
		for _, s := range sizes {
			if s >= cand {
				quantised += int64(s)
			}
		}
		if total == 0 || float64(quantised) >= minFrac*float64(total) {
			threshold = cand
			break
		}
	}
	p.Threshold = threshold
	for i, s := range sizes {
		if s >= threshold {
			p.codecs[i] = c
		} else {
			p.codecs[i] = p.Fallback
		}
	}
	return p
}

// CodecFor returns the codec assigned to tensor index i.
func (p *Plan) CodecFor(i int) Codec {
	if i < 0 || i >= len(p.codecs) {
		panic(fmt.Sprintf("quant: plan has no tensor %d", i))
	}
	return p.codecs[i]
}

// NumTensors returns the number of tensors in the plan.
func (p *Plan) NumTensors() int { return len(p.codecs) }

// QuantisedFraction returns the fraction of parameters that travel
// through the quantised codec.
func (p *Plan) QuantisedFraction() float64 {
	var total, quantised int64
	for i, t := range p.tensors {
		n := int64(t.Shape.Len())
		total += n
		if p.codecs[i] == p.Quantised {
			quantised += n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(quantised) / float64(total)
}

// WireBytes returns the total encoded bytes for one full gradient
// exchange message set (each tensor encoded once under its assigned
// codec).
func (p *Plan) WireBytes() int64 {
	var total int64
	for i, t := range p.tensors {
		total += int64(p.codecs[i].EncodedBytes(t.Shape.Len(), t.Shape))
	}
	return total
}

// RawBytes returns the total float32 bytes of all tensors.
func (p *Plan) RawBytes() int64 {
	var total int64
	for _, t := range p.tensors {
		total += int64(4 * t.Shape.Len())
	}
	return total
}
