package quant

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TensorInfo names one gradient tensor of a model together with its CNTK
// layout shape. The workload package produces inventories of these for
// every network in the study.
type TensorInfo struct {
	Name  string
	Shape Shape
}

// DefaultMinFrac is the paper's small-matrix exemption target (§3.2.2):
// the exemption threshold is chosen so that at least this fraction of
// all parameters stays quantised (the paper uses >99 %).
const DefaultMinFrac = 0.99

// Rule maps a tensor-name pattern to a codec override. Patterns are
// simple globs over the full tensor name: '*' matches any run of
// characters (dots included), '?' matches exactly one. A pattern
// without wildcards additionally matches a whole layer prefix, so
// "embedding" covers "embedding.W" and "embedding.b" — the spelling a
// per-layer precision schedule naturally uses.
type Rule struct {
	Pattern string
	Codec   Codec
}

// Policy is a complete precision assignment scheme for a model: a base
// codec, the small-matrix exemption target, and ordered name-pattern
// rules overriding the codec for matching tensors. It generalises the
// paper's single (codec, minfrac) pair to the per-layer assignments
// that Auto-Precision-Scaling-style schedules need, and it is the unit
// of configuration everywhere codecs used to be: parallel.Config,
// the lpsgd facade, cluster negotiation and the performance simulator.
//
// Policies have their own string grammar, parsed by ParsePolicy and
// reproduced canonically by Name():
//
//	<base codec>[;minfrac=<f>][;<pattern>=<codec>]...
//
// For example "qsgd4b512;minfrac=0.99;embedding=topk0.001;*.b=32bit"
// sends everything as 4-bit QSGD, except embedding tensors as 0.1 %
// top-k and every bias at full precision; of what the rules leave to
// the base codec, at least 99 % of parameters stay quantised. A bare
// codec name is a valid policy (default minfrac, no rules), which keeps
// every pre-policy configuration string working.
type Policy struct {
	// Base carries every tensor no rule claims (subject to the minfrac
	// exemption). A nil Base evaluates as full precision.
	Base Codec
	// MinFrac is the small-matrix exemption target in (0, 1]; values
	// ≤ 0 evaluate as DefaultMinFrac.
	MinFrac float64
	// Rules are evaluated in order; the first matching pattern wins.
	Rules []Rule
}

// NewPolicy wraps a single codec into the policy it is shorthand for:
// the codec as base, DefaultMinFrac, no rules.
func NewPolicy(base Codec) *Policy {
	return &Policy{Base: base, MinFrac: DefaultMinFrac}
}

// ParsePolicy resolves a policy string into a Policy. The grammar is
// semicolon-separated: the first segment is a base codec name (Parse
// grammar), every further segment is either "minfrac=<f>" with f in
// (0, 1] or a "<pattern>=<codec>" rule. Duplicate minfrac segments and
// duplicate patterns are rejected — the canonical spelling must be
// unambiguous. ParsePolicy(p.Name()) round-trips for every valid
// policy, which is what lets capability exchanges and configuration
// files carry policies as strings.
func ParsePolicy(name string) (*Policy, error) {
	segs := strings.Split(strings.TrimSpace(name), ";")
	baseSeg := strings.TrimSpace(segs[0])
	if strings.Contains(baseSeg, "=") {
		return nil, fmt.Errorf("quant: policy %q must start with a base codec name, not a rule", name)
	}
	base, err := Parse(baseSeg)
	if err != nil {
		return nil, fmt.Errorf("quant: policy base: %w", err)
	}
	p := &Policy{Base: base, MinFrac: DefaultMinFrac}
	seenMinFrac := false
	seenPattern := make(map[string]bool)
	for _, seg := range segs[1:] {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("quant: policy %q has an empty segment", name)
		}
		key, val, ok := strings.Cut(seg, "=")
		if !ok {
			return nil, fmt.Errorf("quant: policy segment %q is neither minfrac=<f> nor <pattern>=<codec>", seg)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "minfrac" {
			if seenMinFrac {
				return nil, fmt.Errorf("quant: policy %q sets minfrac twice", name)
			}
			f, err := strconv.ParseFloat(val, 64)
			// The negated comparison also rejects NaN.
			if err != nil || !(f > 0 && f <= 1) {
				return nil, fmt.Errorf("quant: bad minfrac %q (want a number in (0,1])", val)
			}
			p.MinFrac = f
			seenMinFrac = true
			continue
		}
		if key == "" {
			return nil, fmt.Errorf("quant: policy rule %q has an empty pattern", seg)
		}
		if seenPattern[key] {
			return nil, fmt.Errorf("quant: policy %q repeats pattern %q", name, key)
		}
		codec, err := Parse(val)
		if err != nil {
			return nil, fmt.Errorf("quant: policy rule %q: %w", key, err)
		}
		p.Rules = append(p.Rules, Rule{Pattern: key, Codec: codec})
		seenPattern[key] = true
	}
	return p, nil
}

// MustParsePolicy is ParsePolicy for static configuration; it panics on
// error.
func MustParsePolicy(name string) *Policy {
	p, err := ParsePolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}

// CanonicalPolicy resolves a policy string to its canonical spelling —
// the one Policy.Name() produces — so aliases compare as equals:
// "qsgd4;minfrac=0.99" canonicalises to "qsgd4b512", and rule codecs
// canonicalise the same way ("fc=fp32" to "fc=32bit"). Capability
// exchanges (cluster policy negotiation) intersect advertised sets by
// canonical spelling, not raw spelling.
func CanonicalPolicy(name string) (string, error) {
	p, err := ParsePolicy(name)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}

// Name returns the canonical policy string: the base codec's canonical
// name, a minfrac segment only when it differs from DefaultMinFrac, and
// the rules in order with canonical codec spellings. A default policy
// over a single codec therefore names exactly as the codec does, and
// ParsePolicy(p.Name()) round-trips.
func (p *Policy) Name() string {
	var b strings.Builder
	b.WriteString(p.base().Name())
	if mf := p.minFrac(); mf != DefaultMinFrac {
		b.WriteString(";minfrac=")
		b.WriteString(strconv.FormatFloat(mf, 'g', -1, 64))
	}
	for _, r := range p.Rules {
		b.WriteByte(';')
		b.WriteString(r.Pattern)
		b.WriteByte('=')
		b.WriteString(r.Codec.Name())
	}
	return b.String()
}

// Validate reports whether a hand-constructed policy round-trips
// through its own canonical name — the invariant every policy that
// reaches the wire (cluster hellos, frame headers) must satisfy. A
// policy built by ParsePolicy always validates.
func (p *Policy) Validate() error {
	if p == nil {
		return fmt.Errorf("quant: nil policy")
	}
	for _, r := range p.Rules {
		if r.Codec == nil {
			return fmt.Errorf("quant: policy rule %q has a nil codec", r.Pattern)
		}
	}
	name := p.Name()
	rt, err := ParsePolicy(name)
	if err != nil {
		return fmt.Errorf("quant: policy does not round-trip its name %q: %w", name, err)
	}
	if rt.Name() != name {
		return fmt.Errorf("quant: policy name %q re-parses as %q", name, rt.Name())
	}
	return nil
}

// base returns the effective base codec (nil evaluates as FP32).
func (p *Policy) base() Codec {
	if p.Base == nil {
		return FP32{}
	}
	return p.Base
}

// minFrac returns the effective exemption target (≤0 evaluates as
// DefaultMinFrac).
func (p *Policy) minFrac() float64 {
	if p.MinFrac <= 0 {
		return DefaultMinFrac
	}
	return p.MinFrac
}

// ruleFor returns the codec of the first rule matching name, if any.
func (p *Policy) ruleFor(name string) (Codec, bool) {
	for _, r := range p.Rules {
		if MatchPattern(r.Pattern, name) {
			return r.Codec, true
		}
	}
	return nil, false
}

// MatchPattern reports whether a policy rule pattern matches a tensor
// name: '*' matches any (possibly empty) run of characters, '?' exactly
// one; the whole name must match. A pattern without wildcards also
// matches a whole dot-separated layer prefix, so "embedding" covers
// "embedding.W".
func MatchPattern(pattern, name string) bool {
	if globMatch(pattern, name) {
		return true
	}
	if !strings.ContainsAny(pattern, "*?") {
		return strings.HasPrefix(name, pattern+".")
	}
	return false
}

// globMatch is iterative glob matching with '*' backtracking.
func globMatch(p, s string) bool {
	pi, si := 0, 0
	star, backtrack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '?' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '*':
			star, backtrack = pi, si
			pi++
		case star >= 0:
			backtrack++
			pi, si = star+1, backtrack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}

// Plan is a Policy evaluated against a concrete tensor inventory: the
// single source of truth for which codec carries each tensor, what the
// exchange costs on the wire, and what the quantisation kernels cost.
// Evaluation order is the policy's: pattern rules claim their tensors
// first, then the small-matrix exemption threshold (§3.2.2) runs over
// what remains — the largest element-count threshold that still keeps
// at least MinFrac of the remaining parameters on the base codec;
// tensors below it fall back to full precision, because for them
// quantisation costs kernel time without saving meaningful bandwidth.
type Plan struct {
	// Policy is the scheme this plan evaluates.
	Policy *Policy
	// Quantised is the policy's base codec.
	//
	// Deprecated: report via Policy (Policy.Name() identifies the whole
	// scheme; Quantised names only its base).
	Quantised Codec
	// Fallback is used below the threshold (always full precision).
	Fallback Codec
	// Threshold is the minimum element count for base-codec
	// quantisation among the tensors no rule claimed.
	Threshold int
	// MinFraction is the requested quantised-parameter fraction.
	MinFraction float64

	tensors []TensorInfo
	codecs  []Codec
	// exempt marks tensors carried at full precision by the
	// small-matrix exemption (not by an explicit rule).
	exempt []bool
}

// NewPlan evaluates policy against the given tensor inventory. A nil
// policy evaluates as full precision.
func NewPlan(policy *Policy, tensors []TensorInfo) *Plan {
	if policy == nil {
		policy = NewPolicy(FP32{})
	}
	base := policy.base()
	minFrac := policy.minFrac()
	p := &Plan{
		Policy:      policy,
		Quantised:   base,
		Fallback:    FP32{},
		MinFraction: minFrac,
		tensors:     tensors,
		codecs:      make([]Codec, len(tensors)),
		exempt:      make([]bool, len(tensors)),
	}
	// Pattern rules claim their tensors first.
	ruled := make([]bool, len(tensors))
	for i, t := range tensors {
		if c, ok := policy.ruleFor(t.Name); ok {
			p.codecs[i] = c
			ruled[i] = true
		}
	}
	if _, isFP := base.(FP32); isFP {
		for i := range p.codecs {
			if !ruled[i] {
				p.codecs[i] = base
			}
		}
		return p
	}
	// The exemption threshold runs over what the rules left: pick the
	// largest distinct remaining size whose cumulative base-codec mass
	// still meets minFrac of the remaining parameters; with minFrac ≥ 1
	// every remaining tensor is quantised.
	var total int64
	var sizes []int
	for i, t := range tensors {
		if ruled[i] {
			continue
		}
		n := t.Shape.Len()
		sizes = append(sizes, n)
		total += int64(n)
	}
	uniq := append([]int(nil), sizes...)
	sort.Ints(uniq)
	threshold := 0
	for i := len(uniq) - 1; i >= 0; i-- {
		cand := uniq[i]
		var quantised int64
		for _, s := range sizes {
			if s >= cand {
				quantised += int64(s)
			}
		}
		if total == 0 || float64(quantised) >= minFrac*float64(total) {
			threshold = cand
			break
		}
	}
	p.Threshold = threshold
	for i, t := range tensors {
		if ruled[i] {
			continue
		}
		if t.Shape.Len() >= threshold {
			p.codecs[i] = base
		} else {
			p.codecs[i] = p.Fallback
			p.exempt[i] = true
		}
	}
	return p
}

// NewCodecPlan evaluates the pre-policy configuration pair — one codec
// plus an exemption target — by wrapping it into the policy it is
// shorthand for.
//
// Deprecated: build a Policy (ParsePolicy or NewPolicy) and use NewPlan.
func NewCodecPlan(c Codec, tensors []TensorInfo, minFrac float64) *Plan {
	return NewPlan(&Policy{Base: c, MinFrac: minFrac}, tensors)
}

// CodecFor returns the codec assigned to tensor index i.
func (p *Plan) CodecFor(i int) Codec {
	if i < 0 || i >= len(p.codecs) {
		panic(fmt.Sprintf("quant: plan has no tensor %d", i))
	}
	return p.codecs[i]
}

// NumTensors returns the number of tensors in the plan.
func (p *Plan) NumTensors() int { return len(p.codecs) }

// FullPrecision reports whether every tensor travels as raw float32 —
// the condition under which a transport may skip quantisation entirely
// (e.g. the real full-precision ring instead of the byte-volume
// simulation).
func (p *Plan) FullPrecision() bool {
	for _, c := range p.codecs {
		if _, isFP := c.(FP32); !isFP {
			return false
		}
	}
	return true
}

// QuantisedFraction returns the fraction of parameters carried as the
// policy directs — everything except the tensors the small-matrix
// exemption demoted to full precision. Rule-assigned tensors count as
// policy-directed even when their rule says 32bit.
func (p *Plan) QuantisedFraction() float64 {
	var total, exempted int64
	for i, t := range p.tensors {
		n := int64(t.Shape.Len())
		total += n
		if p.exempt[i] {
			exempted += n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(total-exempted) / float64(total)
}

// WireBytes returns the total encoded bytes for one full gradient
// exchange message set (each tensor encoded once under its assigned
// codec).
func (p *Plan) WireBytes() int64 {
	var total int64
	for i, t := range p.tensors {
		total += int64(p.codecs[i].EncodedBytes(t.Shape.Len(), t.Shape))
	}
	return total
}

// RawBytes returns the total float32 bytes of all tensors.
func (p *Plan) RawBytes() int64 {
	var total int64
	for _, t := range p.tensors {
		total += int64(4 * t.Shape.Len())
	}
	return total
}
