package quant

import (
	"testing"
)

func inventory() []TensorInfo {
	// A caricature of a convnet: a couple of giant FC matrices, several
	// medium conv kernels, and many tiny bias/batch-norm vectors.
	return []TensorInfo{
		{Name: "fc6.W", Shape: Shape{Rows: 4096, Cols: 9216}},
		{Name: "fc7.W", Shape: Shape{Rows: 4096, Cols: 4096}},
		{Name: "conv1.W", Shape: Shape{Rows: 11, Cols: 11 * 3 * 96}},
		{Name: "conv2.W", Shape: Shape{Rows: 5, Cols: 5 * 96 * 256}},
		{Name: "conv1.b", Shape: Shape{Rows: 96, Cols: 1}},
		{Name: "conv2.b", Shape: Shape{Rows: 256, Cols: 1}},
		{Name: "bn1.scale", Shape: Shape{Rows: 96, Cols: 1}},
		{Name: "bn1.bias", Shape: Shape{Rows: 96, Cols: 1}},
	}
}

func TestPlanQuantisesAtLeastMinFraction(t *testing.T) {
	p := NewPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	if f := p.QuantisedFraction(); f < 0.99 {
		t.Fatalf("quantised fraction %v < 0.99", f)
	}
}

func TestPlanExemptsSmallTensors(t *testing.T) {
	p := NewPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	small := 0
	for i, ti := range inventory() {
		if _, isFP := p.CodecFor(i).(FP32); isFP {
			small++
			if ti.Shape.Len() >= p.Threshold {
				t.Errorf("tensor %s exempted despite size %d >= threshold %d",
					ti.Name, ti.Shape.Len(), p.Threshold)
			}
		}
	}
	if small == 0 {
		t.Fatal("expected some small tensors to be exempted")
	}
}

func TestPlanThresholdMaximal(t *testing.T) {
	// The chosen threshold should be as large as possible: raising it to
	// the next distinct size must violate the fraction constraint.
	inv := inventory()
	p := NewPlan(NewQSGD(4, 512, MaxNorm), inv, 0.99)
	var total int64
	for _, ti := range inv {
		total += int64(ti.Shape.Len())
	}
	next := int(^uint(0) >> 1)
	for _, ti := range inv {
		if n := ti.Shape.Len(); n > p.Threshold && n < next {
			next = n
		}
	}
	if next == int(^uint(0)>>1) {
		return // threshold already at max size
	}
	var quantised int64
	for _, ti := range inv {
		if ti.Shape.Len() >= next {
			quantised += int64(ti.Shape.Len())
		}
	}
	if float64(quantised) >= 0.99*float64(total) {
		t.Fatalf("threshold %d not maximal: %d would still satisfy 99%%", p.Threshold, next)
	}
}

func TestPlanFullPrecisionPassThrough(t *testing.T) {
	p := NewPlan(FP32{}, inventory(), 0.99)
	for i := range inventory() {
		if _, isFP := p.CodecFor(i).(FP32); !isFP {
			t.Fatalf("fp32 plan assigned non-fp32 codec to tensor %d", i)
		}
	}
	if p.WireBytes() != p.RawBytes() {
		t.Fatal("fp32 plan should have wire == raw bytes")
	}
}

func TestPlanMinFracOneQuantisesEverything(t *testing.T) {
	p := NewPlan(NewQSGD(8, 512, MaxNorm), inventory(), 1.0)
	if f := p.QuantisedFraction(); f != 1 {
		t.Fatalf("fraction = %v, want 1", f)
	}
}

func TestPlanWireBytesSmaller(t *testing.T) {
	p := NewPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	if p.WireBytes() >= p.RawBytes() {
		t.Fatalf("4-bit plan did not compress: wire %d raw %d", p.WireBytes(), p.RawBytes())
	}
	ratio := float64(p.RawBytes()) / float64(p.WireBytes())
	if ratio < 6 || ratio > 8 {
		t.Fatalf("4-bit whole-model ratio %v outside plausible [6,8]", ratio)
	}
}

func TestPlanEmptyInventory(t *testing.T) {
	p := NewPlan(NewQSGD(4, 512, MaxNorm), nil, 0.99)
	if p.NumTensors() != 0 {
		t.Fatal("empty inventory should have zero tensors")
	}
	if p.QuantisedFraction() != 1 {
		t.Fatal("vacuous fraction should be 1")
	}
}

func TestPlanCodecForPanicsOutOfRange(t *testing.T) {
	p := NewPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.CodecFor(999)
}
