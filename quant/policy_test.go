package quant

import (
	"strings"
	"testing"
)

func inventory() []TensorInfo {
	// A caricature of a convnet: a couple of giant FC matrices, several
	// medium conv kernels, and many tiny bias/batch-norm vectors.
	return []TensorInfo{
		{Name: "fc6.W", Shape: Shape{Rows: 4096, Cols: 9216}},
		{Name: "fc7.W", Shape: Shape{Rows: 4096, Cols: 4096}},
		{Name: "conv1.W", Shape: Shape{Rows: 11, Cols: 11 * 3 * 96}},
		{Name: "conv2.W", Shape: Shape{Rows: 5, Cols: 5 * 96 * 256}},
		{Name: "conv1.b", Shape: Shape{Rows: 96, Cols: 1}},
		{Name: "conv2.b", Shape: Shape{Rows: 256, Cols: 1}},
		{Name: "bn1.scale", Shape: Shape{Rows: 96, Cols: 1}},
		{Name: "bn1.bias", Shape: Shape{Rows: 96, Cols: 1}},
	}
}

func TestPlanQuantisesAtLeastMinFraction(t *testing.T) {
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	if f := p.QuantisedFraction(); f < 0.99 {
		t.Fatalf("quantised fraction %v < 0.99", f)
	}
}

func TestPlanExemptsSmallTensors(t *testing.T) {
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	small := 0
	for i, ti := range inventory() {
		if _, isFP := p.CodecFor(i).(FP32); isFP {
			small++
			if ti.Shape.Len() >= p.Threshold {
				t.Errorf("tensor %s exempted despite size %d >= threshold %d",
					ti.Name, ti.Shape.Len(), p.Threshold)
			}
		}
	}
	if small == 0 {
		t.Fatal("expected some small tensors to be exempted")
	}
}

func TestPlanThresholdMaximal(t *testing.T) {
	// The chosen threshold should be as large as possible: raising it to
	// the next distinct size must violate the fraction constraint.
	inv := inventory()
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), inv, 0.99)
	var total int64
	for _, ti := range inv {
		total += int64(ti.Shape.Len())
	}
	next := int(^uint(0) >> 1)
	for _, ti := range inv {
		if n := ti.Shape.Len(); n > p.Threshold && n < next {
			next = n
		}
	}
	if next == int(^uint(0)>>1) {
		return // threshold already at max size
	}
	var quantised int64
	for _, ti := range inv {
		if ti.Shape.Len() >= next {
			quantised += int64(ti.Shape.Len())
		}
	}
	if float64(quantised) >= 0.99*float64(total) {
		t.Fatalf("threshold %d not maximal: %d would still satisfy 99%%", p.Threshold, next)
	}
}

func TestPlanFullPrecisionPassThrough(t *testing.T) {
	p := NewCodecPlan(FP32{}, inventory(), 0.99)
	for i := range inventory() {
		if _, isFP := p.CodecFor(i).(FP32); !isFP {
			t.Fatalf("fp32 plan assigned non-fp32 codec to tensor %d", i)
		}
	}
	if p.WireBytes() != p.RawBytes() {
		t.Fatal("fp32 plan should have wire == raw bytes")
	}
	if !p.FullPrecision() {
		t.Fatal("fp32 plan must report FullPrecision")
	}
}

func TestPlanMinFracOneQuantisesEverything(t *testing.T) {
	p := NewCodecPlan(NewQSGD(8, 512, MaxNorm), inventory(), 1.0)
	if f := p.QuantisedFraction(); f != 1 {
		t.Fatalf("fraction = %v, want 1", f)
	}
	if p.FullPrecision() {
		t.Fatal("an all-quantised plan must not report FullPrecision")
	}
}

func TestPlanWireBytesSmaller(t *testing.T) {
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	if p.WireBytes() >= p.RawBytes() {
		t.Fatalf("4-bit plan did not compress: wire %d raw %d", p.WireBytes(), p.RawBytes())
	}
	ratio := float64(p.RawBytes()) / float64(p.WireBytes())
	if ratio < 6 || ratio > 8 {
		t.Fatalf("4-bit whole-model ratio %v outside plausible [6,8]", ratio)
	}
}

func TestPlanEmptyInventory(t *testing.T) {
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), nil, 0.99)
	if p.NumTensors() != 0 {
		t.Fatal("empty inventory should have zero tensors")
	}
	if p.QuantisedFraction() != 1 {
		t.Fatal("vacuous fraction should be 1")
	}
}

func TestPlanCodecForPanicsOutOfRange(t *testing.T) {
	p := NewCodecPlan(NewQSGD(4, 512, MaxNorm), inventory(), 0.99)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.CodecFor(999)
}

// --- Policy grammar ---

func TestParsePolicyBareCodec(t *testing.T) {
	p, err := ParsePolicy("qsgd4b512")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base.Name() != "qsgd4b512" || p.MinFrac != DefaultMinFrac || len(p.Rules) != 0 {
		t.Fatalf("bare codec parsed as %+v", p)
	}
	if p.Name() != "qsgd4b512" {
		t.Fatalf("default policy over a codec must name as the codec, got %q", p.Name())
	}
}

func TestParsePolicyFull(t *testing.T) {
	p, err := ParsePolicy("qsgd4b512;minfrac=0.95;embedding=topk0.001;*.b=32bit")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base.Name() != "qsgd4b512" || p.MinFrac != 0.95 {
		t.Fatalf("parsed %+v", p)
	}
	if len(p.Rules) != 2 || p.Rules[0].Pattern != "embedding" || p.Rules[0].Codec.Name() != "topk0.001" ||
		p.Rules[1].Pattern != "*.b" || p.Rules[1].Codec.Name() != "32bit" {
		t.Fatalf("rules parsed as %+v", p.Rules)
	}
}

func TestParsePolicyCanonicalises(t *testing.T) {
	// Aliases inside a policy canonicalise: default bucket, fp32, and a
	// minfrac equal to the default all disappear from the name.
	cases := map[string]string{
		"qsgd4":                       "qsgd4b512",
		"fp32":                        "32bit",
		"qsgd4b512;minfrac=0.99":      "qsgd4b512",
		"qsgd4;minfrac=0.5":           "qsgd4b512;minfrac=0.5",
		"qsgd4 ; emb=fp32":            "qsgd4b512;emb=32bit",
		"1bit*; *.bias = qsgd8":       "1bit*64;*.bias=qsgd8b512",
		"qsgd4b512mx;fc=qsgd4b512uni": "qsgd4b512;fc=qsgd4b512-uni",
	}
	for in, want := range cases {
		got, err := CanonicalPolicy(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("CanonicalPolicy(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePolicyRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"florp",
		"qsgd4;;",
		"qsgd4;minfrac=0",
		"qsgd4;minfrac=1.5",
		"qsgd4;minfrac=NaN",
		"qsgd4;minfrac=0.9;minfrac=0.8",
		"qsgd4;emb=florp",
		"qsgd4;=32bit",
		"qsgd4;emb",
		"minfrac=0.9",
		"emb=32bit;qsgd4",
		"qsgd4;emb=32bit;emb=topk0.01",
	}
	for _, in := range bad {
		if _, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q) accepted malformed input", in)
		}
	}
}

func TestPolicyNameRoundTrips(t *testing.T) {
	names := []string{
		"32bit",
		"qsgd4b512",
		"qsgd4b512;minfrac=0.5",
		"qsgd4b512;embedding=topk0.001;*.b=32bit",
		"1bit*64;conv?.W=qsgd8b512",
		"topk0.01;minfrac=1;bn1=32bit",
	}
	for _, name := range names {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		rt, err := ParsePolicy(p.Name())
		if err != nil {
			t.Fatalf("%q: canonical name %q does not re-parse: %v", name, p.Name(), err)
		}
		if rt.Name() != p.Name() {
			t.Fatalf("%q: round-trip %q != %q", name, rt.Name(), p.Name())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything.W", true},
		{"*.b", "conv1.b", true},
		{"*.b", "conv1.bias", false},
		{"*.b*", "conv1.bias", true},
		{"conv?.W", "conv1.W", true},
		{"conv?.W", "conv12.W", false},
		{"conv*", "conv12.W", true},
		{"embedding", "embedding", true},
		{"embedding", "embedding.W", true},
		{"embedding", "embeddings.W", false},
		{"fc6.W", "fc6.W", true},
		{"fc6", "fc6.W", true},
		{"fc", "fc6.W", false},
		{"", "x", false},
		{"*bn*", "deep.bn1.scale", true},
	}
	for _, tc := range cases {
		if got := MatchPattern(tc.pattern, tc.name); got != tc.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

// --- Policy evaluation ---

func TestPlanAppliesRulesBeforeThreshold(t *testing.T) {
	p := NewPlan(MustParsePolicy("qsgd4b512;fc6=topk0.001;*.b=32bit"), inventory())
	for i, ti := range inventory() {
		c := p.CodecFor(i)
		switch {
		case ti.Name == "fc6.W":
			if c.Name() != "topk0.001" {
				t.Errorf("%s carried by %s, want the fc6 rule's topk0.001", ti.Name, c.Name())
			}
		case strings.HasSuffix(ti.Name, ".b"):
			if c.Name() != "32bit" {
				t.Errorf("%s carried by %s, want the *.b rule's 32bit", ti.Name, c.Name())
			}
		}
	}
}

func TestPlanFirstMatchingRuleWins(t *testing.T) {
	p := NewPlan(MustParsePolicy("qsgd4b512;conv1=topk0.01;conv*=qsgd8b512"), inventory())
	for i, ti := range inventory() {
		if ti.Name == "conv1.W" && p.CodecFor(i).Name() != "topk0.01" {
			t.Fatalf("conv1.W carried by %s, want the earlier rule's topk0.01", p.CodecFor(i).Name())
		}
		if ti.Name == "conv2.W" && p.CodecFor(i).Name() != "qsgd8b512" {
			t.Fatalf("conv2.W carried by %s, want the conv* rule's qsgd8b512", p.CodecFor(i).Name())
		}
	}
}

func TestPlanThresholdRunsOverUnruledRemainder(t *testing.T) {
	// Claim the two giant FC tensors with a rule: the exemption
	// threshold must then be computed over the conv/bias remainder, so
	// the medium conv kernels stay quantised and only tiny vectors are
	// exempt.
	p := NewPlan(MustParsePolicy("qsgd4b512;fc*=32bit"), inventory())
	for i, ti := range inventory() {
		c := p.CodecFor(i)
		switch ti.Name {
		case "fc6.W", "fc7.W":
			if c.Name() != "32bit" {
				t.Errorf("%s carried by %s, want the rule's 32bit", ti.Name, c.Name())
			}
		case "conv1.W", "conv2.W":
			if c.Name() != "qsgd4b512" {
				t.Errorf("%s carried by %s, want base qsgd4b512 (threshold over the remainder)",
					ti.Name, c.Name())
			}
		}
	}
	if f := p.QuantisedFraction(); f < 0.99 {
		t.Errorf("policy-directed fraction %v < 0.99", f)
	}
}

func TestPlanRuleAssignedFP32NotCountedAsExempt(t *testing.T) {
	// A rule that says 32bit is a policy decision, not an exemption:
	// the quantised fraction must not drop because of it.
	noRules := NewPlan(MustParsePolicy("qsgd4b512;minfrac=1"), inventory())
	ruled := NewPlan(MustParsePolicy("qsgd4b512;minfrac=1;fc6=32bit"), inventory())
	if f := noRules.QuantisedFraction(); f != 1 {
		t.Fatalf("minfrac=1 fraction %v, want 1", f)
	}
	if f := ruled.QuantisedFraction(); f != 1 {
		t.Fatalf("rule-directed 32bit dropped the fraction to %v", f)
	}
	if ruled.WireBytes() <= noRules.WireBytes() {
		t.Fatal("sending fc6 raw must cost wire bytes")
	}
}

func TestPlanNilPolicyIsFullPrecision(t *testing.T) {
	p := NewPlan(nil, inventory())
	if !p.FullPrecision() {
		t.Fatal("nil policy must evaluate as full precision")
	}
}

func TestPlanMixedPolicyWireBytesBetweenExtremes(t *testing.T) {
	inv := inventory()
	all4 := NewPlan(MustParsePolicy("qsgd4b512;minfrac=1"), inv)
	mixed := NewPlan(MustParsePolicy("qsgd4b512;minfrac=1;fc7=qsgd16b8192"), inv)
	raw := NewPlan(MustParsePolicy("32bit"), inv)
	if !(all4.WireBytes() < mixed.WireBytes() && mixed.WireBytes() < raw.WireBytes()) {
		t.Fatalf("wire ordering violated: all4 %d, mixed %d, raw %d",
			all4.WireBytes(), mixed.WireBytes(), raw.WireBytes())
	}
}
