package quant

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// This file defines the self-describing framed wire format: a compact
// versioned header carrying the codec identity (as a Parse-able name),
// the tensor wire shape and the element count, followed by the codec's
// bit-packed payload. A peer that receives a frame needs no out-of-band
// agreement on codec, bucket size or shape — everything required to
// decode travels in the header. The headerless Encode/Decode pair
// remains the in-process fast path; comm switches to frames whenever a
// transport reports Framed() (bytes leaving the process, e.g. TCP).
//
// Frame layout (little-endian):
//
//	uint32  magic "LPSQ"
//	uint8   format version (currently 1)
//	uint8   codec name length L
//	L bytes codec name (Parse grammar, e.g. "qsgd4b512")
//	uint32  shape rows
//	uint32  shape cols
//	uint32  element count n
//	uint32  payload byte length
//	...     payload (exactly Codec.EncodedBytes(n, shape) bytes)

const (
	// FrameMagic identifies a framed low-precision gradient message
	// ("LPSQ" in little-endian byte order).
	FrameMagic uint32 = 'L' | 'P'<<8 | 'S'<<16 | 'Q'<<24

	// FrameVersion is the wire-format version this package writes.
	// Decoders reject frames from a newer format.
	FrameVersion = 1

	// frameFixedBytes is the header size excluding the codec name.
	frameFixedBytes = 4 + 1 + 1 + 4*4

	// MaxFrameElements bounds the element count a frame may carry: the
	// encoders refuse to build larger frames and the decoders reject
	// headers announcing more, protecting receivers from adversarial or
	// corrupted headers that announce absurd tensor sizes. 2^28 elements
	// (a 1 GiB raw tensor) comfortably covers the largest whole-model
	// tensors in the study.
	MaxFrameElements = 1 << 28
)

// Header is the decoded frame header.
type Header struct {
	// Version is the wire-format version the frame was written with.
	Version byte
	// Codec is the codec name, resolvable with Parse.
	Codec string
	// Shape is the tensor's CNTK wire shape (fixes group boundaries).
	Shape Shape
	// N is the number of encoded elements.
	N int
	// PayloadBytes is the byte length of the codec payload that follows.
	PayloadBytes int
}

// FrameOverhead returns the header bytes a frame adds on top of the
// codec payload for a codec with the given name.
func FrameOverhead(codecName string) int {
	return frameFixedBytes + len(codecName)
}

// appendHeader appends the wire encoding of a frame header to dst. It
// panics on values no conforming decoder would accept — the same caps
// ReadHeader enforces — so unsendable frames fail at the sender, not
// silently at every receiver.
func appendHeader(dst []byte, codecName string, shape Shape, n, payloadBytes int) []byte {
	if len(codecName) > 255 {
		panic(fmt.Sprintf("quant: codec name %q longer than 255 bytes", codecName))
	}
	if n < 0 || n > MaxFrameElements {
		panic(fmt.Sprintf("quant: frame element count %d outside [0, %d]", n, MaxFrameElements))
	}
	if payloadBytes < 0 || int64(payloadBytes) > int64(^uint32(0)) ||
		shape.Rows < 0 || int64(shape.Rows) > int64(^uint32(0)) ||
		shape.Cols < 0 || int64(shape.Cols) > int64(^uint32(0)) {
		panic(fmt.Sprintf("quant: frame fields out of uint32 range (shape %s, payload %d)", shape, payloadBytes))
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], FrameMagic)
	dst = append(dst, b[:]...)
	dst = append(dst, FrameVersion, byte(len(codecName)))
	dst = append(dst, codecName...)
	for _, v := range [4]uint32{uint32(shape.Rows), uint32(shape.Cols), uint32(n), uint32(payloadBytes)} {
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// AppendFramed appends a complete frame — header plus payload — to dst
// and returns the extended slice. payload must be exactly the codec's
// EncodedBytes(n, shape); violating that produces a frame the decoders
// reject.
func AppendFramed(dst []byte, codecName string, shape Shape, n int, payload []byte) []byte {
	dst = appendHeader(dst, codecName, shape, n, len(payload))
	return append(dst, payload...)
}

// ReadHeader reads and validates one frame header from r, leaving r
// positioned at the first payload byte. It returns an error — never
// panics — on truncated, corrupted or oversized headers.
func ReadHeader(r io.Reader) (Header, error) {
	var fixed [6]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return Header{}, fmt.Errorf("quant: frame header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(fixed[0:]); magic != FrameMagic {
		return Header{}, fmt.Errorf("quant: bad frame magic %#x", magic)
	}
	h := Header{Version: fixed[4]}
	if h.Version == 0 || h.Version > FrameVersion {
		return Header{}, fmt.Errorf("quant: unsupported frame version %d (have %d)", h.Version, FrameVersion)
	}
	name := make([]byte, fixed[5])
	if _, err := io.ReadFull(r, name); err != nil {
		return Header{}, fmt.Errorf("quant: frame codec name: %w", err)
	}
	h.Codec = string(name)
	var rest [16]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return Header{}, fmt.Errorf("quant: frame header: %w", err)
	}
	h.Shape = Shape{
		Rows: int(binary.LittleEndian.Uint32(rest[0:])),
		Cols: int(binary.LittleEndian.Uint32(rest[4:])),
	}
	h.N = int(binary.LittleEndian.Uint32(rest[8:]))
	h.PayloadBytes = int(binary.LittleEndian.Uint32(rest[12:]))
	if h.N > MaxFrameElements {
		return Header{}, fmt.Errorf("quant: frame announces %d elements, cap is %d", h.N, MaxFrameElements)
	}
	return h, nil
}

// resolve parses the header's codec and cross-checks the announced
// payload length against the codec's own arithmetic, so a corrupted
// length field is caught before any payload is trusted.
func (h Header) resolve() (Codec, error) {
	c, err := Parse(h.Codec)
	if err != nil {
		return nil, fmt.Errorf("quant: frame codec: %w", err)
	}
	if want := c.EncodedBytes(h.N, h.Shape); h.PayloadBytes != want {
		return nil, fmt.Errorf("quant: frame payload %d bytes, codec %s expects %d for n=%d shape=%s",
			h.PayloadBytes, h.Codec, want, h.N, h.Shape)
	}
	return c, nil
}

// DecodeAny reads one complete frame from r and returns the decoded
// values. The codec is reconstructed from the header via Parse, so the
// caller needs no prior knowledge of what was sent. All failure modes —
// truncation, corruption, unknown codecs, inconsistent lengths — return
// errors rather than panicking.
func DecodeAny(r io.Reader) ([]float32, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	c, err := h.resolve()
	if err != nil {
		return nil, err
	}
	payload, err := readPayload(r, h.PayloadBytes)
	if err != nil {
		return nil, fmt.Errorf("quant: frame payload: %w", err)
	}
	dst := make([]float32, h.N)
	if err := c.Decode(payload, h.N, h.Shape, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// readPayload reads exactly n payload bytes, growing the buffer in
// bounded chunks so a corrupted header announcing a huge payload fails
// on the (truncated) input instead of allocating the announced size up
// front.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFramed decodes one complete frame held in wire into dst, whose
// length must equal the header's element count. It returns the header
// so callers can inspect what arrived. Like DecodeAny it needs no
// out-of-band codec agreement and never panics on bad input.
func DecodeFramed(wire []byte, dst []float32) (Header, error) {
	r := bytes.NewReader(wire)
	h, err := ReadHeader(r)
	if err != nil {
		return Header{}, err
	}
	c, err := h.resolve()
	if err != nil {
		return Header{}, err
	}
	if len(dst) != h.N {
		return Header{}, fmt.Errorf("quant: frame holds %d elements, dst has %d", h.N, len(dst))
	}
	payload := wire[len(wire)-r.Len():]
	if len(payload) != h.PayloadBytes {
		return Header{}, fmt.Errorf("quant: frame payload %d bytes, header announces %d", len(payload), h.PayloadBytes)
	}
	if err := c.Decode(payload, h.N, h.Shape, dst); err != nil {
		return Header{}, err
	}
	return h, nil
}

// framer holds the precomputed frame header for one encoder. Because an
// Encoder is bound to a fixed (codec, n, shape) triple, its header —
// including the payload length — is a constant; EncodeTo assembles
// header and payload into one buffer so transports see a single write.
type framer struct {
	hdr   []byte
	frame []byte
}

// newFramer precomputes the header for codec c encoding n elements of a
// tensor with the given wire shape.
func newFramer(c Codec, n int, shape Shape) framer {
	return framer{hdr: appendHeader(nil, c.Name(), shape, n, c.EncodedBytes(n, shape))}
}

// encodeTo writes the precomputed header followed by payload to w as a
// single Write call and reports the bytes written.
func (f *framer) encodeTo(w io.Writer, payload []byte) (int, error) {
	f.frame = append(append(f.frame[:0], f.hdr...), payload...)
	return w.Write(f.frame)
}
