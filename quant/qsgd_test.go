package quant

import (
	"math"
	"testing"

	"repro/rng"
)

// TestQSGDUnbiased: E[Decode(Encode(v))] = v — the defining property of
// QSGD (paper §2.3: "the value is preserved in expectation").
func TestQSGDUnbiased(t *testing.T) {
	r := rng.New(20)
	const n, trials = 128, 4000
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	for _, c := range []QSGD{
		NewQSGD(2, 128, MaxNorm),
		NewQSGD(4, 512, MaxNorm),
		NewQSGD(4, 512, TwoNorm),
		NewQSGDScheme(4, 128, MaxNorm, Uniform),
	} {
		sum := make([]float64, n)
		dst := make([]float32, n)
		enc := c.NewEncoder(n, shape, 777)
		for trial := 0; trial < trials; trial++ {
			wire := enc.Encode(src)
			if err := c.Decode(wire, n, shape, dst); err != nil {
				t.Fatal(err)
			}
			for i, v := range dst {
				sum[i] += float64(v)
			}
		}
		// Standard error of the mean shrinks as 1/sqrt(trials); the
		// per-element variance is bounded by scale², so a tolerance of a
		// few SEM at scale ~3 is safe.
		for i := range sum {
			mean := sum[i] / trials
			if math.Abs(mean-float64(src[i])) > 0.15 {
				t.Fatalf("%s: element %d biased: mean %v want %v",
					c.Name(), i, mean, src[i])
			}
		}
	}
}

// TestQSGDValuesOnGrid: decoded values lie exactly on the level grid
// scale·k/s.
func TestQSGDValuesOnGrid(t *testing.T) {
	r := rng.New(21)
	c := NewQSGD(4, 64, MaxNorm)
	const n = 64
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	wire := c.NewEncoder(n, shape, 5).Encode(src)
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	scale := float64(bucketScale(src, MaxNorm))
	s := float64(c.Levels())
	for i, v := range dst {
		k := float64(v) / scale * s
		if math.Abs(k-math.Round(k)) > 1e-3 {
			t.Fatalf("element %d = %v not on grid (k=%v)", i, v, k)
		}
	}
}

// TestQSGDMagnitudeBounded: |decoded| ≤ scale under max-norm.
func TestQSGDMagnitudeBounded(t *testing.T) {
	r := rng.New(22)
	for _, bits := range []int{2, 4, 8, 16} {
		c := NewQSGD(bits, 128, MaxNorm)
		const n = 128
		shape := Shape{Rows: n, Cols: 1}
		src := randVec(r, n)
		scale := bucketScale(src, MaxNorm)
		wire := c.NewEncoder(n, shape, 3).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if math.Abs(float64(v)) > float64(scale)*(1+1e-6) {
				t.Fatalf("bits=%d: element %d = %v exceeds scale %v", bits, i, v, scale)
			}
		}
	}
}

// TestQSGDVarianceDecreasesWithBits: more bits, less quantisation noise.
// This is the mechanism behind the paper's accuracy findings (2-bit
// degrades, 4/8-bit match full precision).
func TestQSGDVarianceDecreasesWithBits(t *testing.T) {
	r := rng.New(23)
	const n = 4096
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 4, 8, 16} {
		c := NewQSGD(bits, 512, MaxNorm)
		wire := c.NewEncoder(n, shape, 9).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range src {
			d := float64(src[i] - dst[i])
			mse += d * d
		}
		mse /= n
		if mse >= prev {
			t.Fatalf("bits=%d: MSE %v did not decrease from %v", bits, mse, prev)
		}
		prev = mse
	}
	// 16-bit should be essentially lossless at this scale.
	if prev > 1e-6 {
		t.Fatalf("16-bit MSE too high: %v", prev)
	}
}

// TestQSGDVarianceDecreasesWithSmallerBucket: smaller buckets mean finer
// scales, hence lower error — the bucket-size accuracy lever (§5.1
// "Impact of Bucket Size").
func TestQSGDVarianceDecreasesWithSmallerBucket(t *testing.T) {
	r := rng.New(24)
	const n = 8192
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	var prev float64 = math.Inf(1)
	for _, bucket := range []int{8192, 512, 64} {
		c := NewQSGD(4, bucket, MaxNorm)
		wire := c.NewEncoder(n, shape, 9).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range src {
			d := float64(src[i] - dst[i])
			mse += d * d
		}
		if mse >= prev {
			t.Fatalf("bucket=%d: MSE %v did not decrease from %v", bucket, mse, prev)
		}
		prev = mse
	}
}

// TestQSGDTwoNormSparser: 2-norm scaling produces more exact zeros than
// max-norm — "the former is useful if we wish to obtain sparse quantized
// vectors" (§3.2.2).
func TestQSGDTwoNormSparser(t *testing.T) {
	r := rng.New(25)
	const n = 8192
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	count := func(norm Norm) int {
		c := NewQSGD(2, 512, norm)
		wire := c.NewEncoder(n, shape, 4).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		zeros := 0
		for _, v := range dst {
			if v == 0 {
				zeros++
			}
		}
		return zeros
	}
	zMax, zTwo := count(MaxNorm), count(TwoNorm)
	if zTwo <= zMax {
		t.Fatalf("two-norm zeros %d not greater than max-norm zeros %d", zTwo, zMax)
	}
}

// TestQSGDZeroBucket: an all-zero bucket encodes to scale 0 and decodes
// to exact zeros.
func TestQSGDZeroBucket(t *testing.T) {
	c := NewQSGD(4, 64, MaxNorm)
	const n = 64
	shape := Shape{Rows: n, Cols: 1}
	wire := c.NewEncoder(n, shape, 0).Encode(make([]float32, n))
	dst := make([]float32, n)
	dst[0] = 42
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

// TestQSGD2BitLevels: with 2 bits (sign + 1 level) decoded values are in
// {−scale, 0, +scale} — the paper's "levels 0, 1, and −1".
func TestQSGD2BitLevels(t *testing.T) {
	r := rng.New(26)
	c := NewQSGD(2, 128, MaxNorm)
	const n = 128
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	scale := bucketScale(src, MaxNorm)
	wire := c.NewEncoder(n, shape, 8).Encode(src)
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		av := float32(math.Abs(float64(v)))
		if v != 0 && math.Abs(float64(av-scale)) > 1e-6 {
			t.Fatalf("element %d = %v not in {0, ±%v}", i, v, scale)
		}
	}
}

// TestQSGDUniformSchemeRoundtrip exercises the second level layout.
func TestQSGDUniformSchemeRoundtrip(t *testing.T) {
	r := rng.New(27)
	c := NewQSGDScheme(8, 256, MaxNorm, Uniform)
	const n = 1000
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	wire := c.NewEncoder(n, shape, 2).Encode(src)
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range src {
		d := float64(src[i] - dst[i])
		mse += d * d
	}
	mse /= n
	if mse > 1e-3 {
		t.Fatalf("uniform 8-bit MSE too high: %v", mse)
	}
}

// TestQSGDSeedChangesStream: different seeds give different stochastic
// rounding decisions (independence across workers).
func TestQSGDSeedChangesStream(t *testing.T) {
	r := rng.New(28)
	c := NewQSGD(2, 128, MaxNorm)
	const n = 4096
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	w1 := append([]byte(nil), c.NewEncoder(n, shape, 1).Encode(src)...)
	w2 := append([]byte(nil), c.NewEncoder(n, shape, 2).Encode(src)...)
	if string(w1) == string(w2) {
		t.Fatal("different seeds produced identical wires")
	}
}

func TestQSGDPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewQSGD(3, 128, MaxNorm) },
		func() { NewQSGD(4, 0, MaxNorm) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQSGDLevelCounts(t *testing.T) {
	if NewQSGD(2, 1, MaxNorm).Levels() != 1 {
		t.Error("2-bit sign-magnitude should have 1 level")
	}
	if NewQSGD(4, 1, MaxNorm).Levels() != 7 {
		t.Error("4-bit sign-magnitude should have 7 levels")
	}
	if NewQSGD(8, 1, MaxNorm).Levels() != 127 {
		t.Error("8-bit sign-magnitude should have 127 levels")
	}
	if NewQSGDScheme(2, 1, MaxNorm, Uniform).Levels() != 2 {
		t.Error("2-bit uniform should have index range [0,2]")
	}
}

func TestQSGDNames(t *testing.T) {
	cases := map[string]Codec{
		"qsgd4b512":        NewQSGD(4, 512, MaxNorm),
		"qsgd2b128-l2":     NewQSGD(2, 128, TwoNorm),
		"qsgd8b256-uni":    NewQSGDScheme(8, 256, MaxNorm, Uniform),
		"qsgd8b256-l2-uni": NewQSGDScheme(8, 256, TwoNorm, Uniform),
	}
	for want, c := range cases {
		if got := c.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
