package quant

import (
	"math"
	"testing"

	"repro/rng"
)

func TestExponentialName(t *testing.T) {
	c := NewQSGDScheme(4, 512, MaxNorm, Exponential)
	if c.Name() != "qsgd4b512-exp" {
		t.Fatalf("name = %q", c.Name())
	}
}

// TestExponentialLevelsArePowersOfTwo: decoded magnitudes lie on the
// logarithmic grid scale·2^{j−s} (or zero).
func TestExponentialLevelsArePowersOfTwo(t *testing.T) {
	r := rng.New(30)
	c := NewQSGDScheme(4, 64, MaxNorm, Exponential)
	const n = 64
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	scale := bucketScale(src, MaxNorm)
	wire := c.NewEncoder(n, shape, 3).Encode(src)
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	s := c.Levels()
	for i, v := range dst {
		if v == 0 {
			continue
		}
		a := math.Abs(float64(v)) / float64(scale)
		// a must equal 2^{j-s} for some integer j in [1, s].
		j := math.Log2(a) + float64(s)
		if math.Abs(j-math.Round(j)) > 1e-3 || j < 0.5 || j > float64(s)+0.5 {
			t.Fatalf("element %d: %v not on exponential grid (j=%v)", i, v, j)
		}
	}
}

// TestExponentialUnbiased: like every QSGD scheme, the exponential
// levels preserve values in expectation.
func TestExponentialUnbiased(t *testing.T) {
	r := rng.New(31)
	c := NewQSGDScheme(4, 128, MaxNorm, Exponential)
	const n, trials = 128, 4000
	shape := Shape{Rows: n, Cols: 1}
	src := randVec(r, n)
	enc := c.NewEncoder(n, shape, 11)
	dst := make([]float32, n)
	sum := make([]float64, n)
	for trial := 0; trial < trials; trial++ {
		wire := enc.Encode(src)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			sum[i] += float64(v)
		}
	}
	for i := range sum {
		mean := sum[i] / trials
		if math.Abs(mean-float64(src[i])) > 0.15 {
			t.Fatalf("element %d biased: mean %v want %v", i, mean, src[i])
		}
	}
}

// TestExponentialSmallValuesBetterResolved: the paper's motivation for
// non-uniform levels — small-magnitude values see lower relative error
// than under uniform levels with the same bit budget.
func TestExponentialSmallValuesBetterResolved(t *testing.T) {
	r := rng.New(32)
	const n = 4096
	shape := Shape{Rows: n, Cols: 1}
	// A vector with one dominant value and many tiny ones: max-norm
	// scaling crushes the tiny values, which is where log levels help.
	src := make([]float32, n)
	src[0] = 100
	for i := 1; i < n; i++ {
		src[i] = r.Norm(0.02)
	}
	mse := func(scheme Scheme) float64 {
		c := NewQSGDScheme(4, n, MaxNorm, scheme)
		wire := c.NewEncoder(n, shape, 7).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		var m float64
		for i := 1; i < n; i++ { // exclude the dominant value
			d := float64(src[i] - dst[i])
			m += d * d
		}
		return m / float64(n-1)
	}
	linear := mse(SignMagnitude)
	exp := mse(Exponential)
	if exp >= linear {
		t.Fatalf("exponential MSE %v not below linear %v on small values", exp, linear)
	}
}

func TestExpRoundBoundaries(t *testing.T) {
	r := rng.New(33)
	if expRound(0, 7, r) != 0 {
		t.Error("zero must map to level 0")
	}
	if expRound(1, 7, r) != 7 {
		t.Error("one must map to level s")
	}
	if expRound(2, 7, r) != 7 {
		t.Error("overflow must clamp to s")
	}
	// Exactly on a grid point: must always return that level.
	for trial := 0; trial < 100; trial++ {
		if got := expRound(0.5, 7, r); got != 6 {
			t.Fatalf("0.5 rounded to %d, want 6", got)
		}
	}
}

func TestExpLevelValues(t *testing.T) {
	if expLevel(0, 7) != 0 {
		t.Error("level 0 must be 0")
	}
	if expLevel(7, 7) != 1 {
		t.Error("level s must be 1")
	}
	if expLevel(6, 7) != 0.5 {
		t.Error("level s-1 must be 1/2")
	}
	if expLevel(1, 7) != math.Ldexp(1, -6) {
		t.Error("level 1 must be 2^{1-s}")
	}
}

func TestExtensionCodecsRoundtrip(t *testing.T) {
	r := rng.New(34)
	for _, c := range ExtensionCodecs() {
		const n = 500
		shape := Shape{Rows: 10, Cols: 50}
		src := randVec(r, n)
		enc := c.NewEncoder(n, shape, 5)
		wire := enc.Encode(src)
		if len(wire) != c.EncodedBytes(n, shape) {
			t.Errorf("%s: wire size mismatch", c.Name())
		}
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
