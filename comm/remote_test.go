package comm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// pairConns builds a connected duplex TCP pair over loopback.
func pairConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		t.Fatal(acc.err)
	}
	return dial, acc.conn
}

// twoRankFabrics builds the two single-rank views of a 2-peer mesh.
func twoRankFabrics(t *testing.T) (*RemoteFabric, *RemoteFabric) {
	t.Helper()
	a, b := pairConns(t)
	f0, err := NewRemoteFabric(0, 2, []net.Conn{nil, a})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NewRemoteFabric(1, 2, []net.Conn{b, nil})
	if err != nil {
		f0.Close()
		t.Fatal(err)
	}
	return f0, f1
}

func TestRemoteFabricRoundTrip(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f0.Close()
	defer f1.Close()
	mustSend(t, f0, 0, 1, []byte{7, 8})
	mustSend(t, f1, 1, 0, []byte{9})
	if got := mustRecv(t, f1, 0, 1); len(got) != 2 || got[0] != 7 {
		t.Fatalf("rank 1 received %v", got)
	}
	if got := mustRecv(t, f0, 1, 0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("rank 0 received %v", got)
	}
	if f0.TotalBytes() != 2 || f1.TotalBytes() != 1 {
		t.Fatalf("byte counters wrong: %d, %d", f0.TotalBytes(), f1.TotalBytes())
	}
	if !f0.Framed() || f0.K() != 2 || f0.Local() != 0 || f1.Local() != 1 {
		t.Fatal("fabric identity wrong")
	}
}

func TestRemoteFabricRejectsForeignRank(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f0.Close()
	defer f1.Close()
	if err := f0.Send(1, 0, []byte{1}); err == nil {
		t.Fatal("rank 0 must not send as rank 1")
	}
	if _, err := f0.Recv(0, 1); err == nil {
		t.Fatal("rank 0 must not receive as rank 1")
	}
}

func TestRemoteFabricValidatesConns(t *testing.T) {
	if _, err := NewRemoteFabric(0, 2, []net.Conn{nil, nil}); err == nil {
		t.Fatal("missing peer connection must be rejected")
	}
	if _, err := NewRemoteFabric(2, 2, nil); err == nil {
		t.Fatal("out-of-range local rank must be rejected")
	}
	if _, err := NewRemoteFabric(0, 0, nil); err == nil {
		t.Fatal("empty world must be rejected")
	}
}

// TestClosedFabricReturnsErrClosed: the orderly-shutdown satellite —
// Send and Recv on a closed fabric are clean errors, not panics.
func TestClosedFabricReturnsErrClosed(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f1.Close()
	if err := f0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f0.Send(0, 1, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	if _, err := f0.Recv(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v, want ErrClosed", err)
	}
	if f0.Close() != nil {
		t.Fatal("Close must be idempotent")
	}
}

// TestCloseUnblocksPendingRecv: a Recv blocked on a quiet link returns
// ErrClosed when the fabric shuts down underneath it.
func TestCloseUnblocksPendingRecv(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f1.Close()
	errCh := make(chan error, 1)
	var started sync.WaitGroup
	started.Add(1)
	go func() {
		started.Done()
		_, err := f0.Recv(1, 0)
		errCh <- err
	}()
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let Recv block on the socket
	f0.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked recv got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// TestPeerDisappearingIsAnError: if the remote end vanishes mid-run
// (not an orderly local Close), Recv reports a transport error rather
// than ErrClosed or a panic.
func TestPeerDisappearingIsAnError(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f0.Close()
	f1.Close()
	_, err := f0.Recv(1, 0)
	if err == nil {
		t.Fatal("expected an error after the peer closed")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("peer loss misreported as local close: %v", err)
	}
}

// TestCloseDoesNotDeadlockOnStalledPeer: a peer that stops reading
// (frozen process, zero TCP window) leaves the writer blocked in
// conn.Write and a sender blocked on the full link queue; Close must
// still return within the drain bound instead of deadlocking on the
// queue lock.
func TestCloseDoesNotDeadlockOnStalledPeer(t *testing.T) {
	oldDrain := drainTimeout
	drainTimeout = 300 * time.Millisecond
	defer func() { drainTimeout = oldDrain }()

	f0, f1 := twoRankFabrics(t)
	defer f1.Close() // f1 never reads: the stalled peer

	// Flood the link until the socket buffers, the queue and finally
	// Send itself are all blocked.
	sendDone := make(chan error, 1)
	go func() {
		payload := make([]byte, 1<<20)
		for {
			if err := f0.Send(0, 1, payload); err != nil {
				sendDone <- err
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond) // let everything wedge

	closed := make(chan error, 1)
	go func() { closed <- f0.Close() }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on a stalled peer")
	}
	select {
	case err := <-sendDone:
		if err == nil {
			t.Fatal("the blocked Send must fail once the fabric closes")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("the blocked Send never returned")
	}
}

func TestTCPFabricClosedErrClosed(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	if _, err := f.Recv(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v, want ErrClosed", err)
	}
}

// TestTCPFabricCloseUnblocksRecvAsErrClosed: Close marks every rank
// closed before tearing any socket down, so a Recv blocked on rank 1
// sees ErrClosed — not the EOF of rank 0's end disappearing first.
func TestTCPFabricCloseUnblocksRecvAsErrClosed(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Recv(0, 1)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Recv block on the socket
	f.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked recv got %v, want ErrClosed", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// TestTCPFabricRankViews: the per-rank RemoteFabric views expose the
// same mesh, and their counters sum to the fabric totals.
func TestTCPFabricRankViews(t *testing.T) {
	f, err := NewTCPFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r0, r2 := f.Rank(0), f.Rank(2)
	mustSend(t, r0, 0, 2, []byte{1, 2, 3})
	if got := mustRecv(t, r2, 0, 2); len(got) != 3 {
		t.Fatalf("rank view received %v", got)
	}
	if f.TotalBytes() != 3 || r0.TotalBytes() != 3 || r2.TotalBytes() != 0 {
		t.Fatalf("counters wrong: fabric %d, r0 %d, r2 %d",
			f.TotalBytes(), r0.TotalBytes(), r2.TotalBytes())
	}
}
