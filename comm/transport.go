package comm

import "errors"

// ErrClosed is returned by Send and Recv once a fabric has been closed.
// Orderly shutdown races — a peer tearing its sockets down while the
// last messages of an exchange are still in flight — surface as this
// error instead of a panic, so callers can distinguish "the run is
// over" from a genuine transport fault.
var ErrClosed = errors.New("comm: fabric closed")

// Transport is the byte-moving substrate beneath the aggregation
// primitives: K peers connected by reliable, ordered, directed links.
// Three implementations ship with the repository — the in-process
// Fabric (channels, standing in for PCIe/NVLink peer-to-peer copies),
// TCPFabric (a loopback socket mesh inside one process, standing in
// for the host-mediated MPI path) and RemoteFabric (one rank of a
// multi-process mesh built from pre-established connections by the
// cluster rendezvous). Reducers are written against this interface so
// the same aggregation code runs over any of them.
//
// Addressing a peer outside [0, K) or a self-link panics — that is a
// caller bug. Lifecycle and socket failures return errors: ErrClosed
// after Close, a wrapped transport error otherwise.
type Transport interface {
	// K returns the number of peers.
	K() int
	// Send transmits payload from peer `from` to peer `to`. The payload
	// is copied (or fully written) before Send returns, so callers may
	// reuse encode buffers immediately. Sending on a closed fabric
	// returns ErrClosed.
	Send(from, to int, payload []byte) error
	// Recv blocks until the next message on the (from, to) link and
	// returns it. Receiving on a closed fabric — or having the fabric
	// closed under a blocked Recv — returns ErrClosed.
	Recv(from, to int) ([]byte, error)
	// TotalBytes returns cumulative bytes sent across all links this
	// transport instance observes (for a RemoteFabric, the local rank's
	// sends only).
	TotalBytes() int64
	// TotalMessages returns cumulative messages sent across all links.
	TotalMessages() int64
	// Framed reports whether payloads on this transport cross a process
	// (or machine) boundary and must therefore be self-describing: when
	// true, reducers wrap every payload in the quant framed wire format
	// (versioned header: codec identity, shape, element count) so the
	// receiving peer can decode with no out-of-band codec agreement.
	// In-process transports return false and use the headerless fast
	// path.
	Framed() bool
}

// Compile-time checks that all fabrics satisfy Transport.
var (
	_ Transport = (*Fabric)(nil)
	_ Transport = (*TCPFabric)(nil)
	_ Transport = (*RemoteFabric)(nil)
)
