package comm

// Transport is the byte-moving substrate beneath the aggregation
// primitives: K peers connected by reliable, ordered, directed links.
// Two implementations ship with the repository — the in-process Fabric
// (channels, standing in for PCIe/NVLink peer-to-peer copies) and
// TCPFabric (real loopback sockets, standing in for the
// host-mediated MPI path). Reducers are written against this interface
// so the same aggregation code runs over either.
type Transport interface {
	// K returns the number of peers.
	K() int
	// Send transmits payload from peer `from` to peer `to`. The payload
	// is copied (or fully written) before Send returns, so callers may
	// reuse encode buffers immediately.
	Send(from, to int, payload []byte)
	// Recv blocks until the next message on the (from, to) link and
	// returns it.
	Recv(from, to int) []byte
	// TotalBytes returns cumulative bytes sent across all links.
	TotalBytes() int64
	// TotalMessages returns cumulative messages sent across all links.
	TotalMessages() int64
	// Framed reports whether payloads on this transport cross a process
	// (or machine) boundary and must therefore be self-describing: when
	// true, reducers wrap every payload in the quant framed wire format
	// (versioned header: codec identity, shape, element count) so the
	// receiving peer can decode with no out-of-band codec agreement.
	// In-process transports return false and use the headerless fast
	// path.
	Framed() bool
}

// Compile-time checks that both fabrics satisfy Transport.
var (
	_ Transport = (*Fabric)(nil)
	_ Transport = (*TCPFabric)(nil)
)
