package comm

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/quant"
	"repro/rng"
)

// TestFramedWireNeedsNoSharedConfig: a sender picks a codec at runtime,
// encodes with EncodeTo and ships the frame over a real TCP link; the
// receiver decodes with quant.DecodeAny alone — it never learns which
// codec, bucket size or shape the sender chose. This is the
// self-describing wire contract the framed format exists for.
func TestFramedWireNeedsNoSharedConfig(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Framed() {
		t.Fatal("TCP fabric must demand framed payloads")
	}

	shape := quant.Shape{Rows: 24, Cols: 32}
	n := shape.Len()
	r := rng.New(11)
	src := make([]float32, n)
	for i := range src {
		src[i] = r.Norm(1)
	}

	// The sender's codec choice is a runtime string; the receiver side
	// below never sees it.
	for _, name := range []string{"32bit", "1bit", "1bit*64", "qsgd4b512", "qsgd8", "topk0.25"} {
		codec, err := quant.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		enc := codec.NewEncoder(n, shape, 3)
		var frame bytes.Buffer
		if _, err := enc.EncodeTo(&frame, src); err != nil {
			t.Fatalf("%s: EncodeTo: %v", name, err)
		}
		mustSend(t, f, 0, 1, frame.Bytes())

		// Receiver: raw bytes in, values out. No codec, no shape, no n.
		got, err := quant.DecodeAny(bytes.NewReader(mustRecv(t, f, 0, 1)))
		if err != nil {
			t.Fatalf("%s: DecodeAny on received frame: %v", name, err)
		}
		if len(got) != n {
			t.Fatalf("%s: decoded %d values, want %d", name, len(got), n)
		}
		// The decoded values must match a reference decode with a fresh
		// encoder in the same state.
		ref := codec.NewEncoder(n, shape, 3)
		want := make([]float32, n)
		if err := codec.Decode(ref.Encode(src), n, shape, want); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: element %d: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestFramedReduceBroadcastMatchesHeaderless: the framed TCP aggregation
// must produce bit-identical gradients to the headerless channel
// aggregation, while moving exactly the predicted number of bytes
// (payload plus one header per message).
func TestFramedReduceBroadcastMatchesHeaderless(t *testing.T) {
	r := rng.New(21)
	const k, n = 3, 1536
	inputs := randInputs(r, k, []int{n})
	specs := []TensorSpec{
		{Name: "w", N: n, Wire: quant.Shape{Rows: 32, Cols: 48}, Codec: quant.NewOneBitReshaped(64)},
	}

	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	rbTCP := NewReduceBroadcast(tcp, specs, 4)
	overTCP := runExchange(t, rbTCP, inputs)
	overChan := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 4), inputs)
	for w := 0; w < k; w++ {
		for i := range overTCP[w][0] {
			if overTCP[w][0][i] != overChan[w][0][i] {
				t.Fatalf("worker %d element %d: framed %v vs headerless %v",
					w, i, overTCP[w][0][i], overChan[w][0][i])
			}
		}
	}
	if got, want := tcp.TotalBytes(), rbTCP.WireBytesPerExchange(); got != want {
		t.Fatalf("framed exchange moved %d bytes, predicted %d", got, want)
	}
	// The prediction itself must be the headerless volume plus one
	// header per message: K·(K−1) gathers and K·(K−1) broadcasts.
	headerless := NewReduceBroadcast(NewFabric(k), specs, 4).WireBytesPerExchange()
	msgs := int64(2 * k * (k - 1))
	overhead := int64(quant.FrameOverhead(specs[0].Codec.Name()))
	if got := rbTCP.WireBytesPerExchange(); got != headerless+msgs*overhead {
		t.Fatalf("framed prediction %d, want %d + %d·%d", got, headerless, msgs, overhead)
	}
}

// TestFramedMixedPolicyExchangeSelfDescribes: one reduce-broadcast
// exchange under a per-tensor policy plan interleaves frames naming
// three different codecs on the same TCP links; every message
// self-describes, the decoded values match the headerless in-process
// exchange exactly, and the byte counter matches the prediction with
// each tensor priced under its own codec's frame header.
func TestFramedMixedPolicyExchangeSelfDescribes(t *testing.T) {
	const k = 3
	tensors := []quant.TensorInfo{
		{Name: "embedding.W", Shape: quant.Shape{Rows: 32, Cols: 48}},
		{Name: "dense0.W", Shape: quant.Shape{Rows: 32, Cols: 24}},
		{Name: "dense0.b", Shape: quant.Shape{Rows: 130, Cols: 1}},
	}
	plan := quant.NewPlan(
		quant.MustParsePolicy("qsgd4b512;minfrac=1;embedding=topk0.25;*.b=32bit"), tensors)
	specs := make([]TensorSpec, len(tensors))
	sizes := make([]int, len(tensors))
	for i, ti := range tensors {
		specs[i] = TensorSpec{Name: ti.Name, N: ti.Shape.Len(), Wire: ti.Shape,
			Codec: plan.CodecFor(i)}
		sizes[i] = ti.Shape.Len()
	}
	wantCodecs := []string{"topk0.25", "qsgd4b512", "32bit"}
	for i, want := range wantCodecs {
		if got := specs[i].Codec.Name(); got != want {
			t.Fatalf("tensor %s assigned %s, want %s", specs[i].Name, got, want)
		}
	}

	r := rng.New(33)
	inputs := randInputs(r, k, sizes)
	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	rbTCP := NewReduceBroadcast(tcp, specs, 9)
	overTCP := runExchange(t, rbTCP, inputs)
	overChan := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 9), inputs)
	for w := 0; w < k; w++ {
		for ti := range specs {
			for i := range overTCP[w][ti] {
				if overTCP[w][ti][i] != overChan[w][ti][i] {
					t.Fatalf("worker %d tensor %s element %d: framed %v vs headerless %v",
						w, specs[ti].Name, i, overTCP[w][ti][i], overChan[w][ti][i])
				}
			}
		}
	}
	if got, want := tcp.TotalBytes(), ReduceBroadcastWireBytes(specs, k, true); got != want {
		t.Fatalf("mixed exchange moved %d bytes, predicted %d", got, want)
	}
}

// TestTCPLargeMessagesDontDeadlock: every peer writes before reading in
// the aggregation patterns, so a chunk bigger than the kernel's socket
// buffers used to deadlock the fabric when Send was a blocking write.
// The per-link writer goroutines must absorb it.
func TestTCPLargeMessagesDontDeadlock(t *testing.T) {
	const k, n = 2, 4 << 20 // 16 MB per peer vector, 8 MB per ring chunk
	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ring := NewRing(tcp)
	vecs := make([][]float32, k)
	done := make(chan error, k)
	for w := 0; w < k; w++ {
		vecs[w] = make([]float32, n)
		for i := range vecs[w] {
			vecs[w][i] = float32(w + 1)
		}
		go func(w int) { done <- ring.Reduce(w, 0, vecs[w]) }(w)
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < k; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("ring over TCP deadlocked on large chunks")
		}
	}
	if got := vecs[0][n/2]; got != 3 {
		t.Fatalf("sum = %v, want 3", got)
	}
}

// TestFramedRingOverTCP: the fp32 ring over a framed transport still
// sums exactly and stays bit-identical across peers.
func TestFramedRingOverTCP(t *testing.T) {
	r := rng.New(31)
	const k, n = 3, 700
	inputs := randInputs(r, k, []int{n})
	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ring := NewRing(tcp)
	out := runExchange(t, ring, inputs)
	sums := exactSums(inputs)
	if got, want := tcp.TotalBytes(), ring.WireBytesPerExchange(n); got != want {
		t.Fatalf("framed ring moved %d bytes, predicted %d", got, want)
	}
	for i := range sums[0] {
		if math.Abs(float64(out[0][0][i])-sums[0][i]) > 1e-4 {
			t.Fatalf("element %d: %v vs %v", i, out[0][0][i], sums[0][i])
		}
	}
	for w := 1; w < k; w++ {
		for i := range out[0][0] {
			if out[w][0][i] != out[0][0][i] {
				t.Fatalf("worker %d diverges at %d", w, i)
			}
		}
	}
}
