package comm

import "repro/obs"

// PeerAccounter is implemented by fabrics that keep per-peer link
// ledgers — RemoteFabric for one rank's mesh view, TCPFabric for the
// process-level sum over its local ranks.
type PeerAccounter interface {
	PeerTraffic(p int) PeerTraffic
}

// Traceable is implemented by reducers that can attribute their work to
// the step-phase tracer. The trainer type-asserts for it after building
// a primitive; a reducer given a nil tracer must behave exactly as if
// SetTracer was never called (the obs nil-safe contract).
type Traceable interface {
	SetTracer(*obs.Tracer)
}

// spanAcc accumulates one Reduce call's phase durations so the reducer
// records a handful of coarse spans per tensor instead of one per
// message. All fields are nanoseconds except bytes. With a nil tracer
// every accumulated delta is zero (obs.(*Tracer).Now returns 0) and the
// final Record calls are no-ops, so the accounting is inert.
type spanAcc struct {
	quantise, encode, transfer, decode, bytes int64
}

// record flushes the non-empty phases as spans anchored at startNS.
func (a *spanAcc) record(tr *obs.Tracer, rank int, op string, startNS int64) {
	if tr == nil {
		return
	}
	if a.quantise > 0 {
		tr.Record(rank, obs.PhaseQuantise, op, -1, 0, startNS, a.quantise)
	}
	if a.encode > 0 {
		tr.Record(rank, obs.PhaseEncode, op, -1, 0, startNS, a.encode)
	}
	if a.transfer > 0 {
		tr.Record(rank, obs.PhaseTransfer, op, -1, a.bytes, startNS, a.transfer)
	}
	if a.decode > 0 {
		tr.Record(rank, obs.PhaseDecode, op, -1, 0, startNS, a.decode)
	}
}
