package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/obs"
	"repro/quant"
)

// Ring implements the NCCL-style ring allreduce of §2.4.2: the vector is
// cut into K chunks; a reduce-scatter phase rotates partial sums around
// the ring for K−1 steps, then an allgather phase rotates the finished
// chunks for another K−1 steps. Each peer transmits 2·(K−1)/K of the
// buffer — the bandwidth-optimal collective NCCL builds on GPU rings.
//
// Faithful to NCCL, the reduction semantics are full-precision float32
// sums: there is no codec hook. (The paper's "NCCL low-precision"
// numbers are simulated by sending fewer bytes; see SimulatedRing.)
//
// Over a framed transport each chunk travels as a self-describing
// "32bit" frame, so ring peers — like reduce-and-broadcast peers — need
// no out-of-band agreement to decode.
type Ring struct {
	fabric Transport
	framed bool
	tracer *obs.Tracer
}

// NewRing builds the primitive over the fabric.
func NewRing(f Transport) *Ring { return &Ring{fabric: f, framed: f.Framed()} }

// Name implements Reducer.
func (r *Ring) Name() string { return "nccl-ring" }

// SetTracer implements Traceable: Reduce then records encode (packF32),
// transfer and decode (unpackF32) spans per allreduce.
func (r *Ring) SetTracer(tr *obs.Tracer) { r.tracer = tr }

// WireBytesPerExchange returns the bytes one allreduce of n float32
// values puts on the fabric across all peers: K · 2(K−1)/K · 4n, plus
// one frame header per message on a framed transport (each peer sends
// one chunk per step, 2(K−1) steps).
func (r *Ring) WireBytesPerExchange(n int) int64 {
	return RingWireBytes(n, r.fabric.K(), r.framed)
}

// RingWireBytes predicts the bytes one ring allreduce of n float32
// values puts on a k-peer fabric, without building the primitive. With
// framed set, every chunk message additionally carries a
// self-describing "32bit" frame header — the overhead a TCP byte
// counter measures. The performance simulator prices exchanges through
// this same function, so simulated and measured volumes agree
// byte-for-byte.
func RingWireBytes(n, k int, framed bool) int64 {
	kk := int64(k)
	if kk == 1 {
		return 0
	}
	// Each of the 2(K−1) steps moves every chunk boundary exactly once
	// per peer; summed over peers each step moves the whole vector once.
	total := 2 * (kk - 1) * int64(4*n)
	if framed {
		total += 2 * (kk - 1) * kk * int64(quant.FrameOverhead("32bit"))
	}
	return total
}

// chunkRange returns the element range of chunk c when n elements are
// cut into k chunks.
func chunkRange(n, k, c int) (lo, hi int) {
	lo = c * n / k
	hi = (c + 1) * n / k
	return lo, hi
}

// packF32 serialises vals as raw little-endian float32 bytes, wrapped
// in a self-describing "32bit" frame when framed is set.
func packF32(vals []float32, framed bool) []byte {
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if !framed {
		return raw
	}
	return quant.AppendFramed(nil, "32bit", quant.Shape{Rows: 1, Cols: len(vals)}, len(vals), raw)
}

// unpackF32 reverses packF32, validating that exactly n values arrived.
func unpackF32(buf []byte, n int, framed bool) ([]float32, error) {
	vals := make([]float32, n)
	if framed {
		if _, err := quant.DecodeFramed(buf, vals); err != nil {
			return nil, err
		}
		return vals, nil
	}
	if len(buf) != 4*n {
		return nil, fmt.Errorf("comm: message has %d bytes, want %d", len(buf), 4*n)
	}
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return vals, nil
}

// Reduce implements Reducer. After it returns on all peers, g holds the
// full-precision sum; every peer's copy is bit-identical because each
// chunk's final value is computed once and propagated as bytes.
func (r *Ring) Reduce(rank, _ int, g []float32) error {
	k := r.fabric.K()
	if k == 1 {
		return nil
	}
	n := len(g)
	right := (rank + 1) % k
	left := (rank - 1 + k) % k

	// The Ring is shared by every local rank's goroutine, so the phase
	// accumulator lives on the stack, captured by the chunk closures.
	tr := r.tracer
	var acc spanAcc
	reduceStart := tr.Now()

	sendChunk := func(c int) error {
		lo, hi := chunkRange(n, k, c)
		t0 := tr.Now()
		buf := packF32(g[lo:hi], r.framed)
		acc.encode += tr.Now() - t0
		t0 = tr.Now()
		if err := r.fabric.Send(rank, right, buf); err != nil {
			return fmt.Errorf("comm: ring send chunk %d: %w", c, err)
		}
		acc.transfer += tr.Now() - t0
		acc.bytes += int64(len(buf))
		return nil
	}
	recvChunk := func(c int, add bool) error {
		lo, hi := chunkRange(n, k, c)
		t0 := tr.Now()
		buf, err := r.fabric.Recv(left, rank)
		if err != nil {
			return fmt.Errorf("comm: ring recv chunk %d: %w", c, err)
		}
		acc.transfer += tr.Now() - t0
		acc.bytes += int64(len(buf))
		t0 = tr.Now()
		vals, err := unpackF32(buf, hi-lo, r.framed)
		if err != nil {
			return fmt.Errorf("comm: ring chunk %d: %w", c, err)
		}
		acc.decode += tr.Now() - t0
		for i := lo; i < hi; i++ {
			if add {
				g[i] += vals[i-lo]
			} else {
				g[i] = vals[i-lo]
			}
		}
		return nil
	}

	// Reduce-scatter: after step s, the chunk received has s+2 partial
	// contributions; after K−1 steps rank r owns the complete chunk
	// (r+1) mod K.
	for step := 0; step < k-1; step++ {
		if err := sendChunk(((rank-step)%k + k) % k); err != nil {
			return err
		}
		if err := recvChunk(((rank-step-1)%k+k)%k, true); err != nil {
			return err
		}
	}
	// Allgather: rotate finished chunks around the ring.
	for step := 0; step < k-1; step++ {
		if err := sendChunk(((rank-step+1)%k + k) % k); err != nil {
			return err
		}
		if err := recvChunk(((rank-step)%k+k)%k, false); err != nil {
			return err
		}
	}
	acc.record(tr, rank, "ring", reduceStart)
	return nil
}

// SimulatedRing reproduces the paper's NCCL low-precision *simulation*
// (§4.4): NCCL cannot sum quantised payloads, so the authors measure a
// hypothetical low-precision NCCL by sending exactly the byte volume a
// quantised allreduce would send. Here the gradient values are reduced
// exactly (via the full-precision ring) so that training remains
// meaningful, while SimulatedBytes reports the low-precision wire
// volume used for performance accounting — the same separation of
// semantics and cost the paper makes ("the GPUs will converge at a lower
// rate or could diverge, but this is irrelevant for the experiment").
type SimulatedRing struct {
	ring *Ring
	// BytesFraction scales the true fp32 volume to the simulated one
	// (e.g. 4-bit QSGD with bucket 512 gives ≈ 507/4096).
	BytesFraction float64
	simulated     int64
}

// NewSimulatedRing wraps a ring with a simulated wire-volume fraction.
func NewSimulatedRing(f Transport, fraction float64) *SimulatedRing {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("comm: simulated fraction %v outside (0,1]", fraction))
	}
	return &SimulatedRing{ring: NewRing(f), BytesFraction: fraction}
}

// Name implements Reducer.
func (s *SimulatedRing) Name() string { return "nccl-ring-sim" }

// SetTracer implements Traceable by delegating to the wrapped ring.
func (s *SimulatedRing) SetTracer(tr *obs.Tracer) { s.ring.SetTracer(tr) }

// Reduce implements Reducer.
func (s *SimulatedRing) Reduce(rank, tensorID int, g []float32) error {
	if err := s.ring.Reduce(rank, tensorID, g); err != nil {
		return err
	}
	if rank == 0 {
		s.simulated += int64(float64(s.ring.WireBytesPerExchange(len(g))) * s.BytesFraction)
	}
	return nil
}

// SimulatedBytes returns the cumulative wire volume a low-precision NCCL
// would have transmitted.
func (s *SimulatedRing) SimulatedBytes() int64 { return s.simulated }

// AllGather is the naive quadratic-traffic oracle: every peer broadcasts
// its full vector and everyone sums all K copies in rank order. It is
// used in tests as the correctness reference for the optimised
// primitives.
type AllGather struct {
	fabric Transport
}

// NewAllGather builds the oracle reducer.
func NewAllGather(f Transport) *AllGather { return &AllGather{fabric: f} }

// Name implements Reducer.
func (a *AllGather) Name() string { return "allgather" }

// Reduce implements Reducer.
func (a *AllGather) Reduce(rank, _ int, g []float32) error {
	k := a.fabric.K()
	if k == 1 {
		return nil
	}
	n := len(g)
	framed := a.fabric.Framed()
	buf := packF32(g, framed)
	for p := 0; p < k; p++ {
		if p != rank {
			if err := a.fabric.Send(rank, p, buf); err != nil {
				return fmt.Errorf("comm: allgather to %d: %w", p, err)
			}
		}
	}
	// Sum contributions in rank order for cross-peer determinism.
	sum := make([]float64, n)
	mine := make([]float32, n)
	copy(mine, g)
	for p := 0; p < k; p++ {
		if p == rank {
			for i, v := range mine {
				sum[i] += float64(v)
			}
			continue
		}
		buf, err := a.fabric.Recv(p, rank)
		if err != nil {
			return fmt.Errorf("comm: allgather from %d: %w", p, err)
		}
		in, err := unpackF32(buf, n, framed)
		if err != nil {
			return fmt.Errorf("comm: allgather from %d: %w", p, err)
		}
		for i := 0; i < n; i++ {
			sum[i] += float64(in[i])
		}
	}
	for i := range g {
		g[i] = float32(sum[i])
	}
	return nil
}
