package comm

import (
	"bytes"
	"fmt"

	"repro/obs"
	"repro/quant"
)

// TensorSpec describes one gradient tensor to a Reducer: its flat length,
// its CNTK wire shape (which fixes quantisation-group boundaries) and the
// codec that carries it.
type TensorSpec struct {
	Name  string
	N     int
	Wire  quant.Shape
	Codec quant.Codec
}

// stripe is a contiguous, group-aligned range of one tensor owned by one
// peer during reduce-and-broadcast.
type stripe struct{ off, n int }

// splitStripes partitions n elements into k stripes aligned to group
// boundaries, as the paper's "model of dimension n is split into n/K
// consecutive ranges" with the constraint that a quantisation group is
// never torn across owners.
func splitStripes(n, group, k int) []stripe {
	groups := 0
	if n > 0 {
		groups = (n + group - 1) / group
	}
	out := make([]stripe, k)
	prev := 0
	for i := 0; i < k; i++ {
		// Even split of groups with remainder spread over the first few.
		g := groups / k
		if i < groups%k {
			g++
		}
		end := prev + g*group
		if end > n {
			end = n
		}
		out[i] = stripe{off: prev, n: end - prev}
		prev = end
	}
	return out
}

// ReduceBroadcast implements the MPI reduce-and-broadcast aggregation of
// §2.4.1 with optional quantisation: every peer encodes each stripe of
// its gradient with the tensor's codec and sends it to the stripe's
// owner; the owner decodes and sums all K contributions, re-encodes the
// aggregate (with its own error-feedback state, as CNTK's 1bitSGD does),
// and broadcasts it; every peer — including the owner — then decodes the
// broadcast, so all replicas remain bit-identical.
//
// Over a framed transport (Transport.Framed, e.g. TCPFabric) every
// message is wrapped in the self-describing quant frame format, so the
// peers need no out-of-band agreement on codecs or shapes; over an
// in-process fabric the headerless fast path is used. The decoded
// values — and therefore the training trajectory — are identical either
// way.
type ReduceBroadcast struct {
	fabric  Transport
	framed  bool
	seed    uint64
	specs   []TensorSpec
	stripes [][]stripe
	workers []*rbWorker
	tracer  *obs.Tracer
}

type rbWorker struct {
	// stripeEnc[t][o] encodes this worker's stripe o of tensor t.
	stripeEnc [][]quant.Encoder
	// aggEnc[t] re-encodes the aggregate of this worker's own stripe.
	aggEnc []quant.Encoder
	// scratch decode buffer, sized to the largest stripe.
	tmp   []float32
	accum []float32
	// frame is the scratch buffer frames are assembled in (framed mode).
	frame bytes.Buffer
	// acc gathers the in-flight Reduce call's phase timings (each
	// worker's Reduce runs on its own goroutine, so this is unshared).
	acc spanAcc
}

// NewReduceBroadcast builds the primitive for the given tensors over the
// fabric, with encoder state for every rank. seed separates the
// stochastic quantisation streams of different experiments.
func NewReduceBroadcast(f Transport, specs []TensorSpec, seed uint64) *ReduceBroadcast {
	ranks := make([]int, f.K())
	for i := range ranks {
		ranks[i] = i
	}
	return NewReduceBroadcastLocal(f, specs, seed, ranks)
}

// NewReduceBroadcastLocal builds the primitive with encoder state only
// for the given local ranks — what a cluster worker process needs,
// since it drives exactly one rank of the world and the other ranks'
// error-feedback residuals and RNG streams live in their own
// processes. Seeds are derived per (rank, tensor, stripe) coordinate,
// so the encoders a rank builds here are bit-identical to the ones it
// would get from the all-ranks constructor.
func NewReduceBroadcastLocal(f Transport, specs []TensorSpec, seed uint64, ranks []int) *ReduceBroadcast {
	k := f.K()
	rb := &ReduceBroadcast{
		fabric:  f,
		framed:  f.Framed(),
		seed:    seed,
		specs:   specs,
		stripes: make([][]stripe, len(specs)),
		workers: make([]*rbWorker, k),
	}
	maxStripe := 0
	for t, spec := range specs {
		g := spec.Codec.GroupSize(spec.Wire)
		rb.stripes[t] = splitStripes(spec.N, g, k)
		for _, st := range rb.stripes[t] {
			if st.n > maxStripe {
				maxStripe = st.n
			}
		}
	}
	for _, w := range ranks {
		if w < 0 || w >= k {
			panic(fmt.Sprintf("comm: local rank %d outside world of %d", w, k))
		}
		ws := &rbWorker{
			stripeEnc: make([][]quant.Encoder, len(specs)),
			aggEnc:    make([]quant.Encoder, len(specs)),
			tmp:       make([]float32, maxStripe),
			accum:     make([]float32, maxStripe),
		}
		for t, spec := range specs {
			ws.stripeEnc[t] = make([]quant.Encoder, k)
			for o := 0; o < k; o++ {
				st := rb.stripes[t][o]
				if st.n == 0 {
					continue
				}
				ws.stripeEnc[t][o] = spec.Codec.NewEncoder(st.n, spec.Wire,
					mixSeed(seed, uint64(w), uint64(t), uint64(o)))
			}
			if own := rb.stripes[t][w]; own.n > 0 {
				ws.aggEnc[t] = spec.Codec.NewEncoder(own.n, spec.Wire,
					mixSeed(seed, uint64(w), uint64(t), 1<<32))
			}
		}
		rb.workers[w] = ws
	}
	return rb
}

// mixSeed derives a distinct stream seed from identifying coordinates.
func mixSeed(parts ...uint64) uint64 {
	var z uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		z ^= p + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z *= 0xbf58476d1ce4e5b9
	}
	return z
}

// Name implements Reducer.
func (rb *ReduceBroadcast) Name() string { return "mpi-rb" }

// SetTracer implements Traceable: Reduce then records per-tensor
// quantise/transfer/decode spans. A nil tracer disables tracing again.
func (rb *ReduceBroadcast) SetTracer(tr *obs.Tracer) { rb.tracer = tr }

// aggStripe is the stripe coordinate reserved for a worker's aggregate
// re-encoder in seed derivation — outside any real stripe index, so the
// aggregate stream never collides with a gather stream.
const aggStripe = 1 << 32

// BeginStep implements StepKeyed: it repositions every local stochastic
// encoder stream (quant.Reseeder — QSGD's stochastic rounding) to the
// seed derived from (experiment seed, rank, tensor, stripe, step).
//
// An elastic trainer calls it at the top of every synchronous step,
// which makes the random draws of step s a pure function of the step's
// coordinates instead of the cumulative draw history (non-elastic runs
// keep the paper's original cumulative streams). That property is
// what elastic sessions (repro/elastic) lean on: a replacement rank can
// reconstruct exactly the stream the dead rank would have used, and a
// survivor whose aborted half-step consumed draws mid-exchange rewinds
// simply by re-entering the step. Error-feedback state (1bitSGD, top-k
// residuals) is data-dependent and not covered — see the elastic
// package notes on exact-resume guarantees.
//
// Encoded byte volumes do not depend on the draw values, so step-keyed
// streams leave WireBytesPerExchange — and the performance model's TCP
// byte parity — untouched.
func (rb *ReduceBroadcast) BeginStep(step int64) {
	for w, ws := range rb.workers {
		if ws == nil {
			continue
		}
		for t := range rb.specs {
			for o, enc := range ws.stripeEnc[t] {
				if r, ok := enc.(quant.Reseeder); ok {
					r.Reseed(mixSeed(rb.seed, uint64(w), uint64(t), uint64(o), uint64(step)))
				}
			}
			if r, ok := ws.aggEnc[t].(quant.Reseeder); ok {
				r.Reseed(mixSeed(rb.seed, uint64(w), uint64(t), aggStripe, uint64(step)))
			}
		}
	}
}

// WireBytesPerExchange returns the bytes one full gradient exchange puts
// on the fabric: for every tensor, each of the K peers sends K−1 encoded
// stripes and each owner broadcasts its aggregate to K−1 peers. Over a
// framed transport every message additionally carries the
// self-describing frame header.
func (rb *ReduceBroadcast) WireBytesPerExchange() int64 {
	return ReduceBroadcastWireBytes(rb.specs, rb.fabric.K(), rb.framed)
}

// ReduceBroadcastWireBytes predicts the bytes one full gradient exchange
// of the given tensors puts on a k-peer fabric under the
// reduce-and-broadcast pattern, without building the primitive. With
// framed set, every message additionally carries the self-describing
// quant frame header — the overhead a TCP byte counter measures. The
// performance simulator prices exchanges through this same function, so
// simulated and measured TCP volumes agree byte-for-byte.
func ReduceBroadcastWireBytes(specs []TensorSpec, k int, framed bool) int64 {
	var total int64
	for _, spec := range specs {
		var overhead int64
		if framed {
			overhead = int64(quant.FrameOverhead(spec.Codec.Name()))
		}
		stripes := splitStripes(spec.N, spec.Codec.GroupSize(spec.Wire), k)
		for _, st := range stripes {
			if st.n == 0 {
				continue
			}
			msg := int64(spec.Codec.EncodedBytes(st.n, spec.Wire)) + overhead
			total += msg * int64(k-1) // gather to owner
			total += msg * int64(k-1) // broadcast from owner
		}
	}
	return total
}

// Reduce implements Reducer.
func (rb *ReduceBroadcast) Reduce(rank, tensorID int, g []float32) error {
	if tensorID < 0 || tensorID >= len(rb.specs) {
		return fmt.Errorf("comm: unknown tensor %d", tensorID)
	}
	spec := rb.specs[tensorID]
	if len(g) != spec.N {
		return fmt.Errorf("comm: tensor %s has %d elements, got %d", spec.Name, spec.N, len(g))
	}
	k := rb.fabric.K()
	if k == 1 {
		return nil
	}
	if rank < 0 || rank >= k || rb.workers[rank] == nil {
		return fmt.Errorf("comm: rank %d has no local reduce-broadcast state", rank)
	}
	ws := rb.workers[rank]
	stripes := rb.stripes[tensorID]
	tr := rb.tracer
	ws.acc = spanAcc{}
	reduceStart := tr.Now()

	// Phase 1: encode each stripe and ship it to its owner. The local
	// stripe is encoded too (the sender-side residual must advance
	// uniformly) but stays local, so it always takes the headerless fast
	// path; remote stripes are framed when the transport requires it.
	var ownWire []byte
	for o := 0; o < k; o++ {
		st := stripes[o]
		if st.n == 0 {
			continue
		}
		enc := ws.stripeEnc[tensorID][o]
		src := g[st.off : st.off+st.n]
		if o == rank {
			t0 := tr.Now()
			ownWire = append(ownWire[:0], enc.Encode(src)...)
			ws.acc.quantise += tr.Now() - t0
		} else if err := rb.sendEncoded(ws, enc, rank, o, src); err != nil {
			return fmt.Errorf("comm: send stripe of %s to %d: %w", spec.Name, o, err)
		}
	}

	// Phase 2: owners decode and sum all contributions, re-encode the
	// aggregate, and broadcast it.
	if own := stripes[rank]; own.n > 0 {
		accum := ws.accum[:own.n]
		t0 := tr.Now()
		if err := spec.Codec.Decode(ownWire, own.n, spec.Wire, accum); err != nil {
			return fmt.Errorf("comm: decode own stripe of %s: %w", spec.Name, err)
		}
		ws.acc.decode += tr.Now() - t0
		tmp := ws.tmp[:own.n]
		for p := 0; p < k; p++ {
			if p == rank {
				continue
			}
			t0 = tr.Now()
			wire, err := rb.fabric.Recv(p, rank)
			if err != nil {
				return fmt.Errorf("comm: recv stripe of %s from %d: %w", spec.Name, p, err)
			}
			ws.acc.transfer += tr.Now() - t0
			ws.acc.bytes += int64(len(wire))
			t0 = tr.Now()
			if err := rb.decodeWire(spec, wire, own.n, tmp); err != nil {
				return fmt.Errorf("comm: decode stripe of %s from %d: %w", spec.Name, p, err)
			}
			ws.acc.decode += tr.Now() - t0
			for i, v := range tmp {
				accum[i] += v
			}
		}
		// The owner adopts the decoded broadcast, not the raw sum, so
		// every replica sees identical bytes.
		dst := g[own.off : own.off+own.n]
		if rb.framed {
			ws.frame.Reset()
			t0 = tr.Now()
			if _, err := ws.aggEnc[tensorID].EncodeTo(&ws.frame, accum); err != nil {
				return fmt.Errorf("comm: frame aggregate of %s: %w", spec.Name, err)
			}
			ws.acc.quantise += tr.Now() - t0
			t0 = tr.Now()
			for p := 0; p < k; p++ {
				if p != rank {
					if err := rb.fabric.Send(rank, p, ws.frame.Bytes()); err != nil {
						return fmt.Errorf("comm: broadcast aggregate of %s to %d: %w", spec.Name, p, err)
					}
					ws.acc.bytes += int64(ws.frame.Len())
				}
			}
			ws.acc.transfer += tr.Now() - t0
			t0 = tr.Now()
			if _, err := quant.DecodeFramed(ws.frame.Bytes(), dst); err != nil {
				return fmt.Errorf("comm: decode own aggregate of %s: %w", spec.Name, err)
			}
			ws.acc.decode += tr.Now() - t0
		} else {
			t0 = tr.Now()
			aggWire := ws.aggEnc[tensorID].Encode(accum)
			ws.acc.quantise += tr.Now() - t0
			t0 = tr.Now()
			for p := 0; p < k; p++ {
				if p != rank {
					if err := rb.fabric.Send(rank, p, aggWire); err != nil {
						return fmt.Errorf("comm: broadcast aggregate of %s to %d: %w", spec.Name, p, err)
					}
					ws.acc.bytes += int64(len(aggWire))
				}
			}
			ws.acc.transfer += tr.Now() - t0
			t0 = tr.Now()
			if err := spec.Codec.Decode(aggWire, own.n, spec.Wire, dst); err != nil {
				return fmt.Errorf("comm: decode own aggregate of %s: %w", spec.Name, err)
			}
			ws.acc.decode += tr.Now() - t0
		}
	}

	// Phase 3: receive the aggregated stripes owned by the other peers.
	for o := 0; o < k; o++ {
		st := stripes[o]
		if o == rank || st.n == 0 {
			continue
		}
		t0 := tr.Now()
		wire, err := rb.fabric.Recv(o, rank)
		if err != nil {
			return fmt.Errorf("comm: recv aggregate of %s from %d: %w", spec.Name, o, err)
		}
		ws.acc.transfer += tr.Now() - t0
		ws.acc.bytes += int64(len(wire))
		t0 = tr.Now()
		if err := rb.decodeWire(spec, wire, st.n, g[st.off:st.off+st.n]); err != nil {
			return fmt.Errorf("comm: decode aggregate of %s from %d: %w", spec.Name, o, err)
		}
		ws.acc.decode += tr.Now() - t0
	}
	ws.acc.record(tr, rank, spec.Name, reduceStart)
	return nil
}

// sendEncoded encodes src with enc and ships it from -> to, wrapping it
// in a self-describing frame when the transport demands one.
func (rb *ReduceBroadcast) sendEncoded(ws *rbWorker, enc quant.Encoder, from, to int, src []float32) error {
	tr := rb.tracer
	if !rb.framed {
		t0 := tr.Now()
		wire := enc.Encode(src)
		ws.acc.quantise += tr.Now() - t0
		t0 = tr.Now()
		err := rb.fabric.Send(from, to, wire)
		ws.acc.transfer += tr.Now() - t0
		if err == nil {
			ws.acc.bytes += int64(len(wire))
		}
		return err
	}
	ws.frame.Reset()
	t0 := tr.Now()
	if _, err := enc.EncodeTo(&ws.frame, src); err != nil {
		return err
	}
	ws.acc.quantise += tr.Now() - t0
	t0 = tr.Now()
	err := rb.fabric.Send(from, to, ws.frame.Bytes())
	ws.acc.transfer += tr.Now() - t0
	if err == nil {
		ws.acc.bytes += int64(ws.frame.Len())
	}
	return err
}

// decodeWire decodes one received message of n elements into dst. On a
// framed transport the message describes itself — codec, shape and
// length all come from its header, with no reference to spec.
func (rb *ReduceBroadcast) decodeWire(spec TensorSpec, wire []byte, n int, dst []float32) error {
	if rb.framed {
		_, err := quant.DecodeFramed(wire, dst)
		return err
	}
	return spec.Codec.Decode(wire, n, spec.Wire, dst)
}
