// Package comm is the communication substrate of the reproduction:
// three Transport fabrics — in-process channels standing in for the
// PCIe/NVLink interconnect, a loopback TCP mesh (TCPFabric), and the
// single-rank RemoteFabric view of a multi-process mesh built by the
// cluster rendezvous — plus the two gradient-aggregation primitives
// the paper compares: the MPI-style reduce-and-broadcast pattern
// (§2.4.1), which can carry quantised payloads, and the NCCL-style
// ring allreduce (§2.4.2), whose reduction semantics are hardwired to
// full-precision sums exactly as NCCL's are.
//
// Every byte that crosses a link is counted, so tests and experiments can
// verify that the quantised wire volumes match quant.Codec.EncodedBytes —
// the quantity the performance model prices. Framed transports (those
// whose payloads leave the process, e.g. TCPFabric) additionally carry
// one self-describing quant frame header per message; the reducers'
// WireBytesPerExchange predictions account for it.
package comm

import (
	"fmt"
	"sync/atomic"
)

// Fabric is a reliable, ordered, in-process interconnect between K peers.
// Each directed link is an independent FIFO; sends copy their payload, so
// callers may reuse encode buffers immediately.
type Fabric struct {
	k     int
	links []chan []byte // links[from*k+to]
	bytes []atomic.Int64
	sends []atomic.Int64
}

// linkBuffer is the per-link channel capacity. The aggregation patterns
// in this package keep at most a handful of messages in flight per link;
// a generous buffer lets fast workers run ahead without deadlock.
const linkBuffer = 32

// NewFabric connects k peers. It panics if k is not positive.
func NewFabric(k int) *Fabric {
	if k <= 0 {
		panic(fmt.Sprintf("comm: fabric needs at least one peer, got %d", k))
	}
	f := &Fabric{
		k:     k,
		links: make([]chan []byte, k*k),
		bytes: make([]atomic.Int64, k*k),
		sends: make([]atomic.Int64, k*k),
	}
	for i := range f.links {
		f.links[i] = make(chan []byte, linkBuffer)
	}
	return f
}

// K returns the number of peers.
func (f *Fabric) K() int { return f.k }

// Framed implements Transport: channel payloads stay in-process, so the
// headerless fast path applies.
func (f *Fabric) Framed() bool { return false }

func (f *Fabric) link(from, to int) int {
	if from < 0 || from >= f.k || to < 0 || to >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d->%d of %d)", from, to, f.k))
	}
	if from == to {
		panic("comm: self-send")
	}
	return from*f.k + to
}

// Send transmits payload from peer `from` to peer `to`, copying it. It
// blocks only when the link buffer is full. The in-process fabric has
// no failure modes, so the error is always nil.
func (f *Fabric) Send(from, to int, payload []byte) error {
	l := f.link(from, to)
	msg := append([]byte(nil), payload...)
	f.bytes[l].Add(int64(len(msg)))
	f.sends[l].Add(1)
	f.links[l] <- msg
	return nil
}

// Recv blocks until a message from peer `from` arrives at peer `to` and
// returns it in FIFO order. The error is always nil.
func (f *Fabric) Recv(from, to int) ([]byte, error) {
	return <-f.links[f.link(from, to)], nil
}

// BytesOnLink returns the cumulative bytes sent from -> to.
func (f *Fabric) BytesOnLink(from, to int) int64 {
	return f.bytes[f.link(from, to)].Load()
}

// TotalBytes returns the cumulative bytes across all links.
func (f *Fabric) TotalBytes() int64 {
	var total int64
	for i := range f.bytes {
		total += f.bytes[i].Load()
	}
	return total
}

// TotalMessages returns the cumulative message count across all links.
func (f *Fabric) TotalMessages() int64 {
	var total int64
	for i := range f.sends {
		total += f.sends[i].Load()
	}
	return total
}

// ResetCounters zeroes the byte and message counters (links keep any
// in-flight messages).
func (f *Fabric) ResetCounters() {
	for i := range f.bytes {
		f.bytes[i].Store(0)
		f.sends[i].Store(0)
	}
}

// Reducer synchronously aggregates equal-length gradient vectors across
// the K peers of a fabric: after all peers return from Reduce for the
// same tensor, every peer's g holds the (possibly re-quantised) sum of
// all peers' inputs. Reduce must be called by all K peers, each from its
// own goroutine, with tensors presented in the same order everywhere.
type Reducer interface {
	// Name identifies the primitive ("mpi-rb", "nccl-ring", ...).
	Name() string
	// Reduce aggregates tensor tensorID in place for the given rank.
	Reduce(rank, tensorID int, g []float32) error
}

// StepKeyed is implemented by reducers whose stochastic encoder streams
// can be repositioned per synchronous step (see
// ReduceBroadcast.BeginStep). An elastic trainer calls BeginStep with
// the 1-based index of the step about to run, on every rank, before
// any Reduce of that step — the contract that keeps replicas
// bit-identical across processes and makes the streams reconstructible
// after an elastic rejoin. Reducers without per-step state simply
// don't implement it.
type StepKeyed interface {
	// BeginStep keys the reducer's stochastic streams to the given
	// 1-based step index.
	BeginStep(step int64)
}
