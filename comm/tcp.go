package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPFabric connects K peers through real loopback TCP sockets, one
// connection per directed link, with length-prefixed frames. It is the
// closest stdlib-only analogue of the MPI transport the paper's CNTK
// uses: bytes cross a real kernel boundary (socket buffers, copies,
// framing) instead of being handed over via channels. The aggregation
// primitives run unchanged over either fabric because both satisfy
// Transport.
//
// Each link has a dedicated writer goroutine fed by a buffered queue,
// so Send enqueues a copy and returns like Fabric.Send does instead of
// blocking on the socket write. Without this, peers that all write
// before reading (the aggregation patterns do) would deadlock as soon
// as one message outgrew the kernel's socket buffers.
//
// Frame format per message: uint32 little-endian payload length, then
// the payload bytes.
type TCPFabric struct {
	k int
	// wconns[from*k+to] is the sender-side end of the link's TCP
	// stream; rconns the receiver-side end.
	wconns []net.Conn
	rconns []net.Conn
	// queues[from*k+to] feeds the link's writer goroutine.
	queues  []chan []byte
	writers sync.WaitGroup
	rmu     []sync.Mutex
	bytes   atomic.Int64
	sends   atomic.Int64
	closed  atomic.Bool
}

// NewTCPFabric builds a fully connected loopback mesh between k peers.
func NewTCPFabric(k int) (*TCPFabric, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: tcp fabric needs at least one peer, got %d", k)
	}
	f := &TCPFabric{
		k:      k,
		wconns: make([]net.Conn, k*k),
		rconns: make([]net.Conn, k*k),
		queues: make([]chan []byte, k*k),
		rmu:    make([]sync.Mutex, k*k),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp fabric listen: %w", err)
	}
	defer ln.Close()

	// The acceptor slots each incoming connection by an 8-byte
	// (from, to) preamble written by the dialler.
	nLinks := k * (k - 1)
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < nLinks; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr <- err
				return
			}
			from := int(binary.LittleEndian.Uint32(hdr[0:]))
			to := int(binary.LittleEndian.Uint32(hdr[4:]))
			if from < 0 || from >= k || to < 0 || to >= k || from == to {
				acceptErr <- fmt.Errorf("comm: tcp fabric bad preamble %d->%d", from, to)
				return
			}
			f.rconns[from*k+to] = conn
		}
		acceptErr <- nil
	}()

	// fail tears the half-built mesh down safely: the acceptor goroutine
	// writes f.rconns concurrently, so it must be stopped (listener
	// closed) and joined (acceptErr drained) before Close walks the
	// connection slices.
	fail := func(err error) (*TCPFabric, error) {
		ln.Close()
		<-acceptErr
		f.Close()
		return nil, err
	}

	addr := ln.Addr().String()
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return fail(fmt.Errorf("comm: tcp fabric dial: %w", err))
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:], uint32(from))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(to))
			if _, err := conn.Write(hdr[:]); err != nil {
				conn.Close()
				return fail(fmt.Errorf("comm: tcp fabric preamble: %w", err))
			}
			f.wconns[from*k+to] = conn
		}
	}
	if err := <-acceptErr; err != nil {
		f.Close()
		return nil, err
	}
	// One writer goroutine per outgoing link, mirroring Fabric's
	// buffered channels: FIFO order is preserved because each link has
	// exactly one writer.
	for l, conn := range f.wconns {
		if conn == nil {
			continue
		}
		f.queues[l] = make(chan []byte, linkBuffer)
		f.writers.Add(1)
		go f.writeLoop(l, conn)
	}
	return f, nil
}

// writeLoop drains one link's queue onto its socket until Close.
func (f *TCPFabric) writeLoop(l int, conn net.Conn) {
	defer f.writers.Done()
	var hdr [4]byte
	for payload := range f.queues[l] {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := conn.Write(hdr[:]); err != nil {
			f.writeFail(l, err)
			return
		}
		if len(payload) > 0 {
			if _, err := conn.Write(payload); err != nil {
				f.writeFail(l, err)
				return
			}
		}
	}
}

// writeFail handles a socket write error: silent during shutdown
// (Close races the last in-flight writes), fatal otherwise — matching
// the previous synchronous Send behaviour.
func (f *TCPFabric) writeFail(l int, err error) {
	if f.closed.Load() {
		return
	}
	panic(fmt.Sprintf("comm: tcp send on link %d->%d: %v", l/f.k, l%f.k, err))
}

// K implements Transport.
func (f *TCPFabric) K() int { return f.k }

// Framed implements Transport: socket payloads leave the process, so
// every message carries the self-describing quant frame header and a
// peer on the far side needs no shared codec configuration.
func (f *TCPFabric) Framed() bool { return true }

func (f *TCPFabric) link(from, to int) int {
	if from < 0 || from >= f.k || to < 0 || to >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d->%d of %d)", from, to, f.k))
	}
	if from == to {
		panic("comm: self-send")
	}
	return from*f.k + to
}

// Send implements Transport. The payload is copied and enqueued for
// the link's writer goroutine, so callers may reuse encode buffers
// immediately; Send blocks only when the link queue is full.
func (f *TCPFabric) Send(from, to int, payload []byte) {
	l := f.link(from, to)
	msg := append([]byte(nil), payload...)
	f.bytes.Add(int64(len(msg)))
	f.sends.Add(1)
	f.queues[l] <- msg
}

// Recv implements Transport.
func (f *TCPFabric) Recv(from, to int) []byte {
	l := f.link(from, to)
	f.rmu[l].Lock()
	defer f.rmu[l].Unlock()
	conn := f.rconns[l]
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: tcp recv header %d->%d: %v", from, to, err))
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(conn, buf); err != nil {
			panic(fmt.Sprintf("comm: tcp recv payload %d->%d: %v", from, to, err))
		}
	}
	return buf
}

// TotalBytes implements Transport.
func (f *TCPFabric) TotalBytes() int64 { return f.bytes.Load() }

// TotalMessages implements Transport.
func (f *TCPFabric) TotalMessages() int64 { return f.sends.Load() }

// Close shuts down every connection. Sending after Close panics;
// in-flight queued messages are abandoned (their writers stop when the
// sockets close).
func (f *TCPFabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, q := range f.queues {
		if q != nil {
			close(q)
		}
	}
	var first error
	for _, conns := range [][]net.Conn{f.wconns, f.rconns} {
		for _, c := range conns {
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	f.writers.Wait()
	return first
}
