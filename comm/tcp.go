package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// TCPFabric connects K peers through real loopback TCP sockets: one
// duplex connection per unordered rank pair, each direction carrying
// length-prefixed frames. It is the closest stdlib-only analogue of the
// MPI transport the paper's CNTK uses: bytes cross a real kernel
// boundary (socket buffers, copies, framing) instead of being handed
// over via channels. The aggregation primitives run unchanged over
// either fabric because both satisfy Transport.
//
// Since PR 2 the fabric is assembled from K RemoteFabrics — the same
// single-rank mesh view the cluster rendezvous builds across OS
// processes — so "dial yourself on loopback" is literally the
// one-process special case of the deployable multi-process mesh: each
// rank owns its connection ends, its writer goroutines and its byte
// counters, and TCPFabric merely routes Send/Recv to the rank they
// belong to.
type TCPFabric struct {
	k     int
	ranks []*RemoteFabric
}

// NewTCPFabric builds a fully connected loopback mesh between k peers.
func NewTCPFabric(k int) (*TCPFabric, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: tcp fabric needs at least one peer, got %d", k)
	}
	// conns[r][p] is rank r's end of the duplex link to rank p.
	conns := make([][]net.Conn, k)
	for r := range conns {
		conns[r] = make([]net.Conn, k)
	}
	closeAll := func() {
		for _, row := range conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	}
	if k > 1 {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("comm: tcp fabric listen: %w", err)
		}
		defer ln.Close()

		// The acceptor slots each incoming connection by an 8-byte
		// (lo, hi) pair preamble written by the dialler: the accept side
		// becomes the lower rank's end of the link.
		nPairs := k * (k - 1) / 2
		acceptErr := make(chan error, 1)
		go func() {
			for i := 0; i < nPairs; i++ {
				conn, err := ln.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				var hdr [8]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					conn.Close()
					acceptErr <- err
					return
				}
				lo := int(binary.LittleEndian.Uint32(hdr[0:]))
				hi := int(binary.LittleEndian.Uint32(hdr[4:]))
				if lo < 0 || hi >= k || lo >= hi {
					conn.Close()
					acceptErr <- fmt.Errorf("comm: tcp fabric bad preamble %d<->%d", lo, hi)
					return
				}
				conns[lo][hi] = conn
			}
			acceptErr <- nil
		}()

		// fail tears the half-built mesh down safely: the acceptor
		// goroutine writes conns concurrently, so it must be stopped
		// (listener closed) and joined (acceptErr drained) before the
		// connection slices are walked.
		fail := func(err error) (*TCPFabric, error) {
			ln.Close()
			<-acceptErr
			closeAll()
			return nil, err
		}

		addr := ln.Addr().String()
		for lo := 0; lo < k; lo++ {
			for hi := lo + 1; hi < k; hi++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return fail(fmt.Errorf("comm: tcp fabric dial: %w", err))
				}
				var hdr [8]byte
				binary.LittleEndian.PutUint32(hdr[0:], uint32(lo))
				binary.LittleEndian.PutUint32(hdr[4:], uint32(hi))
				if _, err := conn.Write(hdr[:]); err != nil {
					conn.Close()
					return fail(fmt.Errorf("comm: tcp fabric preamble: %w", err))
				}
				conns[hi][lo] = conn
			}
		}
		if err := <-acceptErr; err != nil {
			closeAll()
			return nil, err
		}
	}
	f := &TCPFabric{k: k, ranks: make([]*RemoteFabric, k)}
	for r := 0; r < k; r++ {
		rf, err := NewRemoteFabric(r, k, conns[r])
		if err != nil {
			// Close the ranks already wrapped, then the raw remainder.
			for _, built := range f.ranks {
				if built != nil {
					built.Close()
				}
			}
			for rr := r; rr < k; rr++ {
				for _, c := range conns[rr] {
					if c != nil {
						c.Close()
					}
				}
			}
			return nil, err
		}
		f.ranks[r] = rf
	}
	return f, nil
}

// K implements Transport.
func (f *TCPFabric) K() int { return f.k }

// Framed implements Transport: socket payloads leave the process's
// memory space, so every message carries the self-describing quant
// frame header and a peer on the far side needs no shared codec
// configuration.
func (f *TCPFabric) Framed() bool { return true }

// Rank exposes one rank's single-rank view of the mesh — what a worker
// process would hold after a cluster rendezvous.
func (f *TCPFabric) Rank(r int) *RemoteFabric {
	if r < 0 || r >= f.k {
		panic(fmt.Sprintf("comm: rank %d outside world of %d", r, f.k))
	}
	return f.ranks[r]
}

// Send implements Transport by routing to the sending rank's mesh view.
func (f *TCPFabric) Send(from, to int, payload []byte) error {
	if from < 0 || from >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d->%d of %d)", from, to, f.k))
	}
	return f.ranks[from].Send(from, to, payload)
}

// Recv implements Transport by routing to the receiving rank's mesh
// view.
func (f *TCPFabric) Recv(from, to int) ([]byte, error) {
	if to < 0 || to >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d->%d of %d)", from, to, f.k))
	}
	return f.ranks[to].Recv(from, to)
}

// TotalBytes implements Transport: the sum over every rank's sends.
func (f *TCPFabric) TotalBytes() int64 {
	var total int64
	for _, r := range f.ranks {
		total += r.TotalBytes()
	}
	return total
}

// PeerTraffic implements PeerAccounter: the process-level view of the
// link to peer p, summed over every local rank's mesh view.
func (f *TCPFabric) PeerTraffic(p int) PeerTraffic {
	var total PeerTraffic
	for _, r := range f.ranks {
		pt := r.PeerTraffic(p)
		total.TxBytes += pt.TxBytes
		total.RxBytes += pt.RxBytes
		total.TxFrames += pt.TxFrames
		total.RxFrames += pt.RxFrames
	}
	return total
}

// TotalMessages implements Transport.
func (f *TCPFabric) TotalMessages() int64 {
	var total int64
	for _, r := range f.ranks {
		total += r.TotalMessages()
	}
	return total
}

// Close shuts down every rank's connections: all ranks are marked
// closed before any socket is torn down, so Send/Recv calls blocked on
// any rank — whose link's far end is a sibling rank in this same
// fabric — observe ErrClosed rather than a spurious transport error.
// Queued messages are flushed within each rank's drain bound.
func (f *TCPFabric) Close() error {
	won := make([]bool, len(f.ranks))
	for i, r := range f.ranks {
		won[i] = r.beginClose()
	}
	// One shared drain bound across all ranks: the sequential teardowns
	// race the same absolute deadline, so an error-path shutdown with
	// wedged links costs at most one drain timeout, not K of them.
	deadline := time.Now().Add(drainTimeout)
	var first error
	for i, r := range f.ranks {
		if !won[i] {
			continue
		}
		if err := r.teardown(deadline); err != nil && first == nil {
			first = err
		}
	}
	return first
}
