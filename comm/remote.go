package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteFabric is the single-rank view of a K-peer TCP mesh: one OS
// process holds the local end of a duplex connection to every other
// rank and moves length-prefixed frames over them. The connections are
// established out of band — by the cluster rendezvous for multi-process
// training, or by NewTCPFabric's loopback mesh for in-process tests —
// so the fabric itself is transport policy only: per-peer writer
// goroutines, FIFO framing, byte accounting and a clean ErrClosed
// shutdown path.
//
// Send may only be called with from == Local and Recv with
// to == Local: a process can speak for its own rank alone. The
// aggregation primitives already observe this discipline (each rank
// sends as itself and receives as itself), which is what lets the same
// reducer code run unmodified over a fully local fabric or one rank of
// a machine-spanning mesh.
//
// Frame format per message: uint32 little-endian payload length, then
// the payload bytes — identical in both directions of every link.
type RemoteFabric struct {
	k     int
	local int
	// conns[p] is the duplex link to peer p (nil at p == local). The
	// local end writes p-bound messages and reads p-originated ones.
	conns []net.Conn
	// queues[p] feeds the writer goroutine of the link to peer p. qmu
	// serialises enqueueing against Close closing the channels.
	queues []chan []byte
	qmu    sync.RWMutex
	// aborted is closed by the first asynchronous write failure, and
	// closing at the start of Close, so senders blocked on the full
	// queue of a stalled or dead link get out (and release qmu) instead
	// of wedging Close.
	aborted   chan struct{}
	abortOnce sync.Once
	closing   chan struct{}
	writers   sync.WaitGroup
	rmu       []sync.Mutex
	// traffic[p] accounts the link to peer p (zero at p == local).
	// Payload bytes only — the 4-byte frame header is transport framing,
	// not exchange traffic, and the simulator prices payloads. The
	// aggregate TotalBytes/TotalMessages are sums over these, so the
	// per-peer and total views can never disagree.
	traffic []peerCounters
	closed  atomic.Bool
	// werr records the first asynchronous socket write failure; Send
	// reports it on the next call.
	werr atomic.Pointer[error]
	// aerr is the abort verdict (set by Abort before the fabric is
	// marked closed): once present, every Send and Recv — blocked or
	// future — returns it instead of ErrClosed, so a health-plane death
	// verdict survives the teardown it triggers.
	aerr atomic.Pointer[error]
}

// peerCounters is the atomic backing of one link's PeerTraffic view.
type peerCounters struct {
	txBytes, rxBytes, txFrames, rxFrames atomic.Int64
}

// PeerTraffic is a point-in-time snapshot of one link's accounting:
// payload bytes and frame counts in each direction, as seen from the
// local rank (Tx = local sent to the peer, Rx = local received).
type PeerTraffic struct {
	TxBytes, RxBytes, TxFrames, RxFrames int64
}

// maxRemoteMessage bounds a single message announced by a peer (1 GiB);
// larger length prefixes are treated as stream corruption.
const maxRemoteMessage = 1 << 30

// drainTimeout bounds how long Close flushes queued messages to peers
// before closing the sockets. Orderly shutdown must deliver the tail of
// the final exchange — a faster rank finishes an epoch and closes while
// slower peers are still reading — but a dead peer must not wedge
// Close forever. A variable so the shutdown tests can shrink it.
var drainTimeout = 10 * time.Second

// NewRemoteFabric wraps pre-established duplex connections into the
// local rank's Transport. conns must have length k with a non-nil
// connection for every peer and nil at index local. The fabric takes
// ownership of the connections and closes them on Close.
func NewRemoteFabric(local, k int, conns []net.Conn) (*RemoteFabric, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: remote fabric needs at least one peer, got %d", k)
	}
	if local < 0 || local >= k {
		return nil, fmt.Errorf("comm: local rank %d outside world of %d", local, k)
	}
	if len(conns) != k {
		return nil, fmt.Errorf("comm: remote fabric wants %d connections, got %d", k, len(conns))
	}
	for p, c := range conns {
		if p == local && c != nil {
			return nil, fmt.Errorf("comm: rank %d must not hold a connection to itself", local)
		}
		if p != local && c == nil {
			return nil, fmt.Errorf("comm: rank %d is missing the connection to rank %d", local, p)
		}
	}
	f := &RemoteFabric{
		k:       k,
		local:   local,
		conns:   append([]net.Conn(nil), conns...),
		queues:  make([]chan []byte, k),
		aborted: make(chan struct{}),
		closing: make(chan struct{}),
		rmu:     make([]sync.Mutex, k),
		traffic: make([]peerCounters, k),
	}
	for p := range f.conns {
		if p == local {
			continue
		}
		f.queues[p] = make(chan []byte, linkBuffer)
		f.writers.Add(1)
		go f.writeLoop(p, f.conns[p])
	}
	return f, nil
}

// writeLoop drains one peer's queue onto its socket. It runs until the
// queue is closed and empty (orderly Close flushes the tail of the
// final exchange this way) or the socket fails, after which it keeps
// consuming and discarding so queued senders and Close are never stuck
// behind a dead link.
func (f *RemoteFabric) writeLoop(peer int, conn net.Conn) {
	defer f.writers.Done()
	var hdr [4]byte
	for payload := range f.queues[peer] {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := conn.Write(hdr[:]); err != nil {
			f.writeFail(peer, err)
			break
		}
		if len(payload) > 0 {
			if _, err := conn.Write(payload); err != nil {
				f.writeFail(peer, err)
				break
			}
		}
	}
	for range f.queues[peer] {
		// Discard until Close closes the channel.
	}
}

// writeFail records a socket write error so the next Send reports it,
// and aborts senders blocked on this fabric's queues. Errors during
// shutdown are expected (the drain deadline fires, or the peer closed
// first) and not recorded.
func (f *RemoteFabric) writeFail(peer int, err error) {
	if !f.closed.Load() {
		e := fmt.Errorf("comm: send to rank %d: %w", peer, err)
		f.werr.CompareAndSwap(nil, &e)
	}
	f.abortOnce.Do(func() { close(f.aborted) })
}

// K implements Transport.
func (f *RemoteFabric) K() int { return f.k }

// Local returns the rank this fabric speaks for.
func (f *RemoteFabric) Local() int { return f.local }

// Framed implements Transport: payloads leave the process, so every
// message carries the self-describing quant frame header.
func (f *RemoteFabric) Framed() bool { return true }

// checkPeer panics on addressing bugs (out-of-range ranks, self-links)
// and returns an error when the link does not terminate at the local
// rank — the one misuse a distributed caller can plausibly make.
func (f *RemoteFabric) checkPeer(local, peer int, op string) error {
	if peer < 0 || peer >= f.k || local < 0 || local >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d, %d of %d)", local, peer, f.k))
	}
	if peer == local {
		panic("comm: self-send")
	}
	if local != f.local {
		return fmt.Errorf("comm: rank %d cannot %s as rank %d", f.local, op, local)
	}
	return nil
}

// Send implements Transport. The payload is copied and enqueued for the
// peer's writer goroutine; Send blocks only when the link queue is
// full. from must be the local rank.
func (f *RemoteFabric) Send(from, to int, payload []byte) error {
	if err := f.checkPeer(from, to, "send"); err != nil {
		return err
	}
	// Lifecycle wins over a recorded writer error: after an orderly
	// Close the caller must see ErrClosed — or the abort verdict — not
	// the stale socket failure that preceded it.
	if err := f.lifecycleErr(); err != nil {
		return err
	}
	if e := f.werr.Load(); e != nil {
		return *e
	}
	msg := append([]byte(nil), payload...)
	// The read lock spans the enqueue so Close cannot close the channel
	// under a blocked send; the aborted case frees senders stuck on the
	// full queue of a link whose writer died.
	f.qmu.RLock()
	if err := f.lifecycleErr(); err != nil {
		f.qmu.RUnlock()
		return err
	}
	select {
	case f.queues[to] <- msg:
		f.qmu.RUnlock()
		f.traffic[to].txBytes.Add(int64(len(msg)))
		f.traffic[to].txFrames.Add(1)
		return nil
	case <-f.aborted:
		f.qmu.RUnlock()
		if err := f.lifecycleErr(); err != nil {
			return err
		}
		if e := f.werr.Load(); e != nil {
			return *e
		}
		return ErrClosed
	case <-f.closing:
		f.qmu.RUnlock()
		if err := f.lifecycleErr(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// lifecycleErr returns the error every data-path call must report once
// the fabric is no longer usable: the abort verdict if one was
// delivered, ErrClosed after an orderly Close, nil while live.
func (f *RemoteFabric) lifecycleErr() error {
	if e := f.aerr.Load(); e != nil {
		return *e
	}
	if f.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Recv implements Transport. to must be the local rank.
func (f *RemoteFabric) Recv(from, to int) ([]byte, error) {
	if err := f.checkPeer(to, from, "receive"); err != nil {
		return nil, err
	}
	f.rmu[from].Lock()
	defer f.rmu[from].Unlock()
	if err := f.lifecycleErr(); err != nil {
		return nil, err
	}
	conn := f.conns[from]
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, f.recvErr(from, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRemoteMessage {
		return nil, fmt.Errorf("comm: rank %d announces a %d-byte message, cap is %d", from, n, maxRemoteMessage)
	}
	// Grow in bounded chunks so a corrupted length prefix fails on the
	// (truncated) stream instead of allocating the announced size.
	const chunk = 1 << 20
	buf := make([]byte, 0, min(int(n), chunk))
	for len(buf) < int(n) {
		m := min(int(n)-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(conn, buf[start:]); err != nil {
			return nil, f.recvErr(from, err)
		}
	}
	f.traffic[from].rxBytes.Add(int64(n))
	f.traffic[from].rxFrames.Add(1)
	return buf, nil
}

// recvErr maps a socket read failure to the lifecycle error during
// shutdown (the abort verdict, or ErrClosed after an orderly Close).
func (f *RemoteFabric) recvErr(from int, err error) error {
	if lerr := f.lifecycleErr(); lerr != nil {
		return lerr
	}
	return fmt.Errorf("comm: recv from rank %d: %w", from, err)
}

// TotalBytes implements Transport: payload bytes sent by the local
// rank, the sum of every link's TxBytes.
func (f *RemoteFabric) TotalBytes() int64 {
	var n int64
	for p := range f.traffic {
		n += f.traffic[p].txBytes.Load()
	}
	return n
}

// TotalMessages implements Transport: messages sent by the local rank,
// the sum of every link's TxFrames.
func (f *RemoteFabric) TotalMessages() int64 {
	var n int64
	for p := range f.traffic {
		n += f.traffic[p].txFrames.Load()
	}
	return n
}

// PeerTraffic returns the accounting snapshot for the link to peer p.
// The local rank's own slot is always zero.
func (f *RemoteFabric) PeerTraffic(p int) PeerTraffic {
	if p < 0 || p >= f.k {
		panic(fmt.Sprintf("comm: peer %d outside world of %d", p, f.k))
	}
	c := &f.traffic[p]
	return PeerTraffic{
		TxBytes:  c.txBytes.Load(),
		RxBytes:  c.rxBytes.Load(),
		TxFrames: c.txFrames.Load(),
		RxFrames: c.rxFrames.Load(),
	}
}

// Close flushes queued messages to the peers (bounded by drainTimeout —
// slower ranks may still be reading this rank's tail of the final
// exchange) and then shuts every connection down. Subsequent — and
// concurrently blocked — Send and Recv calls return ErrClosed. Close is
// idempotent.
func (f *RemoteFabric) Close() error {
	if !f.beginClose() {
		return nil
	}
	return f.teardown(time.Now().Add(drainTimeout))
}

// Abort tears the fabric down with a verdict: every Send and Recv —
// blocked mid-call or issued later — returns err instead of ErrClosed.
// Unlike Close it does not drain queued sends: an abort means a peer is
// gone and the exchange it belonged to is void, so the sockets are cut
// immediately. This is the hook the cluster health plane pulls when its
// failure detector declares a peer dead (err is then a
// health.ErrPeerDead), turning "survivors hang inside a blocking Recv"
// into a prompt, typed unblock on every rank. Abort after Close is a
// no-op; Close after Abort is a no-op.
func (f *RemoteFabric) Abort(err error) {
	if err == nil {
		err = ErrClosed
	}
	// Only the winner of the close transition installs the verdict: if
	// an orderly Close got there first, ErrClosed semantics stand and
	// the late verdict is dropped. Blocked callers are only woken by
	// the teardown below, which runs after the verdict is in place, so
	// every interrupted call observes it.
	if !f.beginClose() {
		return
	}
	f.aerr.Store(&err)
	f.abortOnce.Do(func() { close(f.aborted) })
	f.teardown(time.Now())
}

// beginClose marks the fabric closed, reporting whether this call won
// the transition. TCPFabric marks all of its rank views closed before
// tearing any of them down, so a Recv blocked on one rank observes
// ErrClosed — not a spurious transport error — when a sibling rank's
// socket end disappears first.
func (f *RemoteFabric) beginClose() bool {
	return f.closed.CompareAndSwap(false, true)
}

// teardown drains and closes a fabric already marked closed. The
// caller supplies the drain deadline so that a multi-rank owner
// (TCPFabric) can tear its ranks down sequentially under one shared
// bound instead of paying the drain timeout once per rank.
func (f *RemoteFabric) teardown(deadline time.Time) error {
	// Bound the drain first: a peer that has stalled mid-stream (full
	// TCP window, frozen process) keeps its writer blocked inside
	// conn.Write, and a training goroutine may be blocked in Send on
	// that link's full queue holding qmu's read lock — the deadline
	// unsticks the writer, closing unsticks the sender, and only then
	// can the write lock be taken to close the queues. Readers are cut
	// immediately: a closed fabric owes its callers ErrClosed (or the
	// abort verdict) now, not after the drain — and a half-open peer
	// that will never send another byte must not be able to park a
	// blocked Recv behind the whole drain window.
	now := time.Now()
	for _, c := range f.conns {
		if c != nil {
			c.SetReadDeadline(now)
			c.SetWriteDeadline(deadline)
		}
	}
	close(f.closing)
	// Stop new sends, then let the writers drain what is queued.
	f.qmu.Lock()
	for _, q := range f.queues {
		if q != nil {
			close(q)
		}
	}
	f.qmu.Unlock()
	f.writers.Wait()
	var first error
	for _, c := range f.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
