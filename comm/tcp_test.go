package comm

import (
	"math"
	"testing"

	"repro/quant"
	"repro/rng"
)

func TestTCPFabricBasicSendRecv(t *testing.T) {
	f, err := NewTCPFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mustSend(t, f, 0, 1, []byte{1, 2, 3})
	mustSend(t, f, 0, 1, []byte{4})
	if got := mustRecv(t, f, 0, 1); len(got) != 3 || got[0] != 1 {
		t.Fatalf("first message wrong: %v", got)
	}
	if got := mustRecv(t, f, 0, 1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("second message wrong: %v", got)
	}
	if f.TotalBytes() != 4 || f.TotalMessages() != 2 {
		t.Fatalf("counters wrong: %d bytes, %d msgs", f.TotalBytes(), f.TotalMessages())
	}
}

func TestTCPFabricEmptyPayload(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mustSend(t, f, 0, 1, nil)
	if got := mustRecv(t, f, 0, 1); len(got) != 0 {
		t.Fatalf("expected empty message, got %d bytes", len(got))
	}
}

func TestTCPFabricLargeMessage(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan []byte)
	go func() {
		buf, err := f.Recv(1, 0)
		if err != nil {
			t.Error(err)
		}
		done <- buf
	}()
	mustSend(t, f, 1, 0, big)
	got := <-done
	if len(got) != len(big) {
		t.Fatalf("length %d, want %d", len(got), len(big))
	}
	for i := 0; i < len(big); i += 4099 {
		if got[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestTCPFabricRejectsBadK(t *testing.T) {
	if _, err := NewTCPFabric(0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

// TestReduceBroadcastOverTCP: the full quantised aggregation pattern
// over real sockets produces the same result as over channels.
func TestReduceBroadcastOverTCP(t *testing.T) {
	r := rng.New(77)
	const k, n = 4, 2048
	inputs := randInputs(r, k, []int{n})
	specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 64, Cols: 32},
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm)}}

	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	overTCP := runExchange(t, NewReduceBroadcast(tcp, specs, 9), inputs)
	overChan := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 9), inputs)
	for w := 0; w < k; w++ {
		for i := range overTCP[w][0] {
			if overTCP[w][0][i] != overChan[w][0][i] {
				t.Fatalf("worker %d element %d: tcp %v vs chan %v",
					w, i, overTCP[w][0][i], overChan[w][0][i])
			}
		}
	}
	if tcp.TotalBytes() != NewReduceBroadcast(tcp, specs, 9).WireBytesPerExchange() {
		t.Fatalf("tcp moved %d bytes, predicted %d",
			tcp.TotalBytes(), NewReduceBroadcast(tcp, specs, 9).WireBytesPerExchange())
	}
}

// TestRingOverTCP: the NCCL-style ring runs over sockets too.
func TestRingOverTCP(t *testing.T) {
	r := rng.New(78)
	const k, n = 3, 999
	inputs := randInputs(r, k, []int{n})
	tcp, err := NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	out := runExchange(t, NewRing(tcp), inputs)
	sums := exactSums(inputs)
	for i := range sums[0] {
		if math.Abs(float64(out[0][0][i])-sums[0][i]) > 1e-4 {
			t.Fatalf("element %d: %v vs %v", i, out[0][0][i], sums[0][i])
		}
	}
	for w := 1; w < k; w++ {
		for i := range out[0][0] {
			if out[w][0][i] != out[0][0][i] {
				t.Fatalf("worker %d diverges at %d", w, i)
			}
		}
	}
}

func BenchmarkTCPvsChanFabric(b *testing.B) {
	payload := make([]byte, 64*1024)
	b.Run("chan", func(b *testing.B) {
		f := NewFabric(2)
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if err := f.Send(0, 1, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := f.Recv(0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		f, err := NewTCPFabric(2)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Send(0, 1, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := f.Recv(0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
