package comm

import (
	"math"
	"sync"
	"testing"

	"repro/quant"
	"repro/rng"
)

// runExchange drives one synchronous gradient exchange: K goroutines
// each reduce their copy of every tensor in order. It returns each
// worker's resulting tensors.
func runExchange(t *testing.T, red Reducer, inputs [][][]float32) [][][]float32 {
	t.Helper()
	k := len(inputs)
	out := make([][][]float32, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		out[w] = make([][]float32, len(inputs[w]))
		for ti := range inputs[w] {
			out[w][ti] = append([]float32(nil), inputs[w][ti]...)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := range out[w] {
				if err := red.Reduce(w, ti, out[w][ti]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	return out
}

// mustSend and mustRecv wrap the error-returning Transport calls for
// tests exercising happy paths.
func mustSend(t *testing.T, f Transport, from, to int, payload []byte) {
	t.Helper()
	if err := f.Send(from, to, payload); err != nil {
		t.Fatalf("send %d->%d: %v", from, to, err)
	}
}

func mustRecv(t *testing.T, f Transport, from, to int) []byte {
	t.Helper()
	buf, err := f.Recv(from, to)
	if err != nil {
		t.Fatalf("recv %d->%d: %v", from, to, err)
	}
	return buf
}

func randInputs(r *rng.RNG, k int, sizes []int) [][][]float32 {
	inputs := make([][][]float32, k)
	for w := 0; w < k; w++ {
		inputs[w] = make([][]float32, len(sizes))
		for ti, n := range sizes {
			v := make([]float32, n)
			for i := range v {
				v[i] = r.Norm(1)
			}
			inputs[w][ti] = v
		}
	}
	return inputs
}

func exactSums(inputs [][][]float32) [][]float64 {
	k := len(inputs)
	sums := make([][]float64, len(inputs[0]))
	for ti := range inputs[0] {
		sums[ti] = make([]float64, len(inputs[0][ti]))
		for w := 0; w < k; w++ {
			for i, v := range inputs[w][ti] {
				sums[ti][i] += float64(v)
			}
		}
	}
	return sums
}

func TestFabricFIFO(t *testing.T) {
	f := NewFabric(2)
	mustSend(t, f, 0, 1, []byte{1})
	mustSend(t, f, 0, 1, []byte{2})
	if got := mustRecv(t, f, 0, 1); got[0] != 1 {
		t.Fatal("FIFO order violated")
	}
	if got := mustRecv(t, f, 0, 1); got[0] != 2 {
		t.Fatal("FIFO order violated")
	}
}

func TestFabricCopiesPayload(t *testing.T) {
	f := NewFabric(2)
	buf := []byte{1, 2, 3}
	mustSend(t, f, 0, 1, buf)
	buf[0] = 99
	if got := mustRecv(t, f, 0, 1); got[0] != 1 {
		t.Fatal("send did not copy payload")
	}
}

func TestFabricByteAccounting(t *testing.T) {
	f := NewFabric(3)
	mustSend(t, f, 0, 1, make([]byte, 10))
	mustSend(t, f, 1, 2, make([]byte, 5))
	if f.BytesOnLink(0, 1) != 10 || f.BytesOnLink(1, 2) != 5 {
		t.Fatal("per-link counters wrong")
	}
	if f.TotalBytes() != 15 || f.TotalMessages() != 2 {
		t.Fatal("totals wrong")
	}
	f.ResetCounters()
	if f.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFabricPanics(t *testing.T) {
	f := NewFabric(2)
	for i, fn := range []func(){
		func() { f.Send(0, 0, nil) }, //lint:allow commerr Send panics on the self-link before returning; the recover below is the assertion
		func() { f.Send(0, 5, nil) }, //lint:allow commerr Send panics on the out-of-range peer before returning; the recover below is the assertion
		func() { NewFabric(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSplitStripesAlignmentAndCoverage(t *testing.T) {
	cases := []struct{ n, group, k int }{
		{1000, 64, 4}, {1000, 64, 3}, {7, 64, 4}, {0, 64, 2},
		{128, 128, 4}, {129, 128, 2}, {512, 3, 8}, {100, 1, 16},
	}
	for _, tc := range cases {
		stripes := splitStripes(tc.n, tc.group, tc.k)
		if len(stripes) != tc.k {
			t.Fatalf("n=%d k=%d: %d stripes", tc.n, tc.k, len(stripes))
		}
		covered := 0
		for i, st := range stripes {
			if st.off != covered {
				t.Fatalf("n=%d k=%d: stripe %d off %d, want %d", tc.n, tc.k, i, st.off, covered)
			}
			if st.n > 0 && st.off%tc.group != 0 {
				t.Fatalf("n=%d k=%d: stripe %d not group-aligned", tc.n, tc.k, i)
			}
			covered += st.n
		}
		if covered != tc.n {
			t.Fatalf("n=%d k=%d: covered %d", tc.n, tc.k, covered)
		}
	}
}

func TestReduceBroadcastFP32ExactSum(t *testing.T) {
	r := rng.New(1)
	for _, k := range []int{1, 2, 3, 4, 8} {
		sizes := []int{513, 64, 7}
		inputs := randInputs(r.Fork(uint64(k)), k, sizes)
		specs := make([]TensorSpec, len(sizes))
		for ti, n := range sizes {
			specs[ti] = TensorSpec{Name: "t", N: n, Wire: quant.Shape{Rows: n, Cols: 1}, Codec: quant.FP32{}}
		}
		f := NewFabric(k)
		rb := NewReduceBroadcast(f, specs, 5)
		out := runExchange(t, rb, inputs)
		sums := exactSums(inputs)
		for ti := range sizes {
			for i := range sums[ti] {
				if math.Abs(float64(out[0][ti][i])-sums[ti][i]) > 1e-4 {
					t.Fatalf("k=%d tensor %d elem %d: got %v want %v",
						k, ti, i, out[0][ti][i], sums[ti][i])
				}
			}
		}
	}
}

func TestReduceBroadcastReplicasIdentical(t *testing.T) {
	r := rng.New(2)
	codecs := []quant.Codec{
		quant.FP32{},
		quant.OneBit{},
		quant.NewOneBitReshaped(64),
		quant.NewQSGD(4, 512, quant.MaxNorm),
		quant.NewQSGD(2, 128, quant.MaxNorm),
	}
	for _, c := range codecs {
		k := 4
		sizes := []int{1000, 130}
		inputs := randInputs(r.Fork(uint64(len(c.Name()))), k, sizes)
		specs := []TensorSpec{
			{Name: "a", N: 1000, Wire: quant.Shape{Rows: 10, Cols: 100}, Codec: c},
			{Name: "b", N: 130, Wire: quant.Shape{Rows: 13, Cols: 10}, Codec: c},
		}
		f := NewFabric(k)
		rb := NewReduceBroadcast(f, specs, 6)
		out := runExchange(t, rb, inputs)
		for w := 1; w < k; w++ {
			for ti := range sizes {
				for i := range out[0][ti] {
					if out[w][ti][i] != out[0][ti][i] {
						t.Fatalf("%s: worker %d tensor %d diverges at %d", c.Name(), w, ti, i)
					}
				}
			}
		}
	}
}

// TestReduceBroadcastQuantisedApproximatesSum: QSGD-aggregated results
// stay close to the exact sum (unbiased, bounded variance).
func TestReduceBroadcastQuantisedApproximatesSum(t *testing.T) {
	r := rng.New(3)
	k := 4
	n := 4096
	inputs := randInputs(r, k, []int{n})
	specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 64, Cols: 64},
		Codec: quant.NewQSGD(8, 512, quant.MaxNorm)}}
	f := NewFabric(k)
	rb := NewReduceBroadcast(f, specs, 7)
	out := runExchange(t, rb, inputs)
	sums := exactSums(inputs)
	var mse float64
	for i := range sums[0] {
		d := float64(out[0][0][i]) - sums[0][i]
		mse += d * d
	}
	mse /= float64(n)
	// 8-bit two-stage quantisation of N(0,1) sums: tiny but nonzero.
	if mse > 0.02 {
		t.Fatalf("MSE %v too large for 8-bit aggregation", mse)
	}
	if mse == 0 {
		t.Fatal("quantised aggregation was exact — codec not applied?")
	}
}

// TestReduceBroadcastWireBytes: the fabric's byte counters must agree
// exactly with the primitive's predicted volume.
func TestReduceBroadcastWireBytes(t *testing.T) {
	r := rng.New(4)
	for _, c := range []quant.Codec{
		quant.FP32{},
		quant.NewQSGD(4, 512, quant.MaxNorm),
		quant.NewOneBitReshaped(64),
	} {
		k := 4
		sizes := []int{4096, 130}
		inputs := randInputs(r, k, sizes)
		specs := []TensorSpec{
			{Name: "a", N: 4096, Wire: quant.Shape{Rows: 64, Cols: 64}, Codec: c},
			{Name: "b", N: 130, Wire: quant.Shape{Rows: 13, Cols: 10}, Codec: c},
		}
		f := NewFabric(k)
		rb := NewReduceBroadcast(f, specs, 8)
		runExchange(t, rb, inputs)
		if got, want := f.TotalBytes(), rb.WireBytesPerExchange(); got != want {
			t.Errorf("%s: fabric moved %d bytes, predicted %d", c.Name(), got, want)
		}
	}
}

func TestReduceBroadcastDeterministic(t *testing.T) {
	r := rng.New(5)
	run := func() []float32 {
		k := 3
		n := 1024
		inputs := randInputs(rng.New(99), k, []int{n})
		specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 32, Cols: 32},
			Codec: quant.NewQSGD(4, 128, quant.MaxNorm)}}
		rb := NewReduceBroadcast(NewFabric(k), specs, 11)
		out := runExchange(t, rb, inputs)
		return out[0][0]
	}
	_ = r
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic aggregation at %d", i)
		}
	}
}

// TestReduceBroadcastStepKeyedStreams is the contract elastic sessions
// rest on: after BeginStep(s), a quantised exchange's result depends
// only on (seed, inputs, s) — not on how many exchanges the reducer ran
// before, and not on a half-finished exchange that was abandoned
// mid-step. A replacement process reconstructing a dead rank's streams,
// and a survivor re-running an aborted step, both reduce to this
// property.
func TestReduceBroadcastStepKeyedStreams(t *testing.T) {
	const k, n, seed = 3, 1024, 11
	specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 32, Cols: 32},
		Codec: quant.NewQSGD(4, 128, quant.MaxNorm)}}
	inputs := randInputs(rng.New(99), k, []int{n})

	exchangeAtStep := func(rb *ReduceBroadcast, step int64) []float32 {
		rb.BeginStep(step)
		return runExchange(t, rb, inputs)[0][0]
	}

	// Reference: a fresh reducer running step 5 directly.
	fresh := NewReduceBroadcast(NewFabric(k), specs, seed)
	want := exchangeAtStep(fresh, 5)

	// A reducer with a different draw history (steps 1..3 with different
	// data) must produce the same step-5 result.
	warm := NewReduceBroadcast(NewFabric(k), specs, seed)
	other := randInputs(rng.New(123), k, []int{n})
	for s := int64(1); s <= 3; s++ {
		warm.BeginStep(s)
		runExchange(t, warm, other)
	}
	if got := exchangeAtStep(warm, 5); !equalF32(got, want) {
		t.Fatal("step-keyed streams depend on prior exchange history")
	}

	// A half-consumed step rewinds: run step 5, then re-enter it.
	rerun := NewReduceBroadcast(NewFabric(k), specs, seed)
	exchangeAtStep(rerun, 5)
	if got := exchangeAtStep(rerun, 5); !equalF32(got, want) {
		t.Fatal("re-entering a step does not rewind the streams")
	}

	// Distinct steps use distinct streams (the reseed is not a no-op).
	if got := exchangeAtStep(fresh, 6); equalF32(got, want) {
		t.Fatal("steps 5 and 6 drew identical streams — step keying is inert")
	}
}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRingMatchesOracle(t *testing.T) {
	r := rng.New(6)
	for _, k := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, n := range []int{1, 5, 64, 1000} {
			if n < k {
				continue
			}
			inputs := randInputs(r.Fork(uint64(k*1000+n)), k, []int{n})
			ringOut := runExchange(t, NewRing(NewFabric(k)), inputs)
			oracleOut := runExchange(t, NewAllGather(NewFabric(k)), inputs)
			for i := range ringOut[0][0] {
				if math.Abs(float64(ringOut[0][0][i]-oracleOut[0][0][i])) > 1e-4 {
					t.Fatalf("k=%d n=%d: ring %v vs oracle %v at %d",
						k, n, ringOut[0][0][i], oracleOut[0][0][i], i)
				}
			}
		}
	}
}

func TestRingReplicasIdentical(t *testing.T) {
	r := rng.New(7)
	k, n := 5, 1003
	inputs := randInputs(r, k, []int{n})
	out := runExchange(t, NewRing(NewFabric(k)), inputs)
	for w := 1; w < k; w++ {
		for i := range out[0][0] {
			if out[w][0][i] != out[0][0][i] {
				t.Fatalf("worker %d diverges at %d", w, i)
			}
		}
	}
}

func TestRingWireBytes(t *testing.T) {
	r := rng.New(8)
	k, n := 4, 4096
	inputs := randInputs(r, k, []int{n})
	f := NewFabric(k)
	ring := NewRing(f)
	runExchange(t, ring, inputs)
	if got, want := f.TotalBytes(), ring.WireBytesPerExchange(n); got != want {
		t.Fatalf("ring moved %d bytes, predicted %d", got, want)
	}
	// 2(K-1)·4n total = 98304 for k=4, n=4096.
	if want := int64(2 * 3 * 4 * 4096); f.TotalBytes() != want {
		t.Fatalf("ring bytes %d, want %d", f.TotalBytes(), want)
	}
}

func TestSimulatedRingBytes(t *testing.T) {
	r := rng.New(9)
	k, n := 4, 4096
	inputs := randInputs(r, k, []int{n})
	f := NewFabric(k)
	sim := NewSimulatedRing(f, 0.125) // e.g. 4-bit / 32-bit
	out := runExchange(t, sim, inputs)
	sums := exactSums(inputs)
	for i := range sums[0] {
		if math.Abs(float64(out[0][0][i])-sums[0][i]) > 1e-4 {
			t.Fatal("simulated ring must still reduce exactly")
		}
	}
	wantSim := int64(float64(NewRing(f).WireBytesPerExchange(n)) * 0.125)
	if got := sim.SimulatedBytes(); got != wantSim {
		t.Fatalf("simulated bytes %d, want %d", got, wantSim)
	}
}

func TestSimulatedRingPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulatedRing(NewFabric(2), 0)
}

// TestOneBitAggregationErrorFeedbackAcrossRounds: repeated exchanges of
// the same gradient through 1bitSGD converge on average to the true sum
// thanks to sender- and aggregator-side residuals.
func TestOneBitAggregationErrorFeedbackAcrossRounds(t *testing.T) {
	r := rng.New(10)
	k, n := 2, 256
	// Fixed per-worker gradients across rounds.
	fixed := randInputs(r, k, []int{n})
	specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 64, Cols: 4},
		Codec: quant.NewOneBitReshaped(64)}}
	rb := NewReduceBroadcast(NewFabric(k), specs, 12)
	sum := make([]float64, n)
	const rounds = 200
	for round := 0; round < rounds; round++ {
		out := runExchange(t, rb, fixed)
		for i, v := range out[0][0] {
			sum[i] += float64(v)
		}
	}
	want := exactSums(fixed)
	var worst float64
	for i := range sum {
		got := sum[i] / rounds
		if d := math.Abs(got - want[0][i]); d > worst {
			worst = d
		}
	}
	// Error feedback keeps the long-run average within a fraction of the
	// per-round quantisation step.
	if worst > 0.35 {
		t.Fatalf("long-run mean deviates by %v — error feedback broken?", worst)
	}
}

func TestReduceErrors(t *testing.T) {
	specs := []TensorSpec{{Name: "g", N: 10, Wire: quant.Shape{Rows: 10, Cols: 1}, Codec: quant.FP32{}}}
	rb := NewReduceBroadcast(NewFabric(2), specs, 0)
	if err := rb.Reduce(0, 5, make([]float32, 10)); err == nil {
		t.Fatal("expected unknown-tensor error")
	}
	if err := rb.Reduce(0, 0, make([]float32, 3)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSingleWorkerNoOp(t *testing.T) {
	g := []float32{1, 2, 3}
	specs := []TensorSpec{{Name: "g", N: 3, Wire: quant.Shape{Rows: 3, Cols: 1}, Codec: quant.FP32{}}}
	rb := NewReduceBroadcast(NewFabric(1), specs, 0)
	if err := rb.Reduce(0, 0, g); err != nil {
		t.Fatal(err)
	}
	if g[0] != 1 || g[2] != 3 {
		t.Fatal("single-worker reduce must be identity")
	}
	ring := NewRing(NewFabric(1))
	if err := ring.Reduce(0, 0, g); err != nil {
		t.Fatal(err)
	}
	if g[0] != 1 {
		t.Fatal("single-worker ring must be identity")
	}
}

// TestRingLinearity: allreduce is linear — reducing a+b equals the sum
// of reducing a and b separately (property test over random inputs).
func TestRingLinearity(t *testing.T) {
	r := rng.New(90)
	const k, n = 4, 257
	a := randInputs(r, k, []int{n})
	b := randInputs(r, k, []int{n})
	sum := make([][][]float32, k)
	for w := 0; w < k; w++ {
		sum[w] = [][]float32{make([]float32, n)}
		for i := 0; i < n; i++ {
			sum[w][0][i] = a[w][0][i] + b[w][0][i]
		}
	}
	ra := runExchange(t, NewRing(NewFabric(k)), a)
	rb := runExchange(t, NewRing(NewFabric(k)), b)
	rs := runExchange(t, NewRing(NewFabric(k)), sum)
	for i := 0; i < n; i++ {
		want := float64(ra[0][0][i]) + float64(rb[0][0][i])
		if math.Abs(float64(rs[0][0][i])-want) > 1e-3 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, rs[0][0][i], want)
		}
	}
}

// TestReduceBroadcastFP32Linearity: the full-precision MPI path is
// linear as well (quantised paths are not, by design).
func TestReduceBroadcastFP32Linearity(t *testing.T) {
	r := rng.New(91)
	const k, n = 3, 130
	specs := []TensorSpec{{Name: "g", N: n, Wire: quant.Shape{Rows: 13, Cols: 10}, Codec: quant.FP32{}}}
	a := randInputs(r, k, []int{n})
	scaled := make([][][]float32, k)
	for w := 0; w < k; w++ {
		scaled[w] = [][]float32{make([]float32, n)}
		for i := 0; i < n; i++ {
			scaled[w][0][i] = 2 * a[w][0][i]
		}
	}
	ra := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 1), a)
	rs := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 1), scaled)
	for i := 0; i < n; i++ {
		if math.Abs(float64(rs[0][0][i])-2*float64(ra[0][0][i])) > 1e-3 {
			t.Fatalf("homogeneity violated at %d", i)
		}
	}
}

// TestMultiTensorOrderIndependence: reducing tensors in the same order
// from every worker is the contract; this exercises a long mixed-size
// sequence to shake out ordering bugs under buffered links.
func TestMultiTensorOrderIndependence(t *testing.T) {
	r := rng.New(92)
	const k = 4
	sizes := []int{7, 513, 64, 1, 300, 128, 33, 2048, 5, 90}
	inputs := randInputs(r, k, sizes)
	specs := make([]TensorSpec, len(sizes))
	for i, n := range sizes {
		specs[i] = TensorSpec{Name: "t", N: n,
			Wire: quant.Shape{Rows: n, Cols: 1}, Codec: quant.NewQSGD(8, 64, quant.MaxNorm)}
	}
	out := runExchange(t, NewReduceBroadcast(NewFabric(k), specs, 13), inputs)
	for w := 1; w < k; w++ {
		for ti := range sizes {
			for i := range out[0][ti] {
				if out[w][ti][i] != out[0][ti][i] {
					t.Fatalf("worker %d tensor %d diverges", w, ti)
				}
			}
		}
	}
}
