package comm

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/quant"
)

// meshConns wires a fully connected duplex mesh over loopback TCP:
// conns[r][p] is rank r's end of the link to rank p. The raw slices are
// returned so tests can sever a rank's sockets out from under its
// fabric — the closest in-process stand-in for a SIGKILLed peer.
func meshConns(t *testing.T, k int) [][]net.Conn {
	t.Helper()
	conns := make([][]net.Conn, k)
	for r := range conns {
		conns[r] = make([]net.Conn, k)
	}
	for lo := 0; lo < k; lo++ {
		for hi := lo + 1; hi < k; hi++ {
			a, b := pairConns(t)
			conns[lo][hi] = a
			conns[hi][lo] = b
		}
	}
	return conns
}

// waitGoroutines asserts the goroutine count returns to the baseline
// within a bound — no reader, writer or reducer goroutine leaked.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d now", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAbortUnblocksWithTypedError: Abort delivers its verdict to a
// Recv blocked mid-call and to every later Send/Recv — the contract the
// cluster health plane builds its coordinated abort on.
func TestAbortUnblocksWithTypedError(t *testing.T) {
	errDead := errors.New("test: rank 1 declared dead")
	f0, f1 := twoRankFabrics(t)
	defer f1.Close()

	got := make(chan error, 1)
	go func() {
		_, err := f0.Recv(1, 0)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Recv block on the socket
	f0.Abort(errDead)

	select {
	case err := <-got:
		if !errors.Is(err, errDead) {
			t.Fatalf("blocked recv returned %v, want the abort verdict", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock the pending Recv")
	}
	if err := f0.Send(0, 1, []byte{1}); !errors.Is(err, errDead) {
		t.Fatalf("send after abort: %v, want the verdict", err)
	}
	if _, err := f0.Recv(1, 0); !errors.Is(err, errDead) {
		t.Fatalf("recv after abort: %v, want the verdict", err)
	}
	if err := f0.Close(); err != nil {
		t.Fatalf("Close after Abort must be a no-op, got %v", err)
	}
}

// TestCloseAfterAbortKeepsVerdict and the converse: whichever lifecycle
// transition wins, later calls see a single consistent error.
func TestAbortAfterCloseIsErrClosed(t *testing.T) {
	f0, f1 := twoRankFabrics(t)
	defer f1.Close()
	f0.Close()
	f0.Abort(errors.New("late verdict"))
	if err := f0.Send(0, 1, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close-then-abort: %v, want ErrClosed", err)
	}
}

// TestCloseInterruptsReaderBeforeDrain: the half-open hang window — a
// peer that stopped reading wedges the drain, and before the fix a
// Recv blocked on that peer's silent socket waited out the whole drain
// bound too. Close must cut blocked readers immediately and
// deterministically with ErrClosed.
func TestCloseInterruptsReaderBeforeDrain(t *testing.T) {
	oldDrain := drainTimeout
	drainTimeout = 3 * time.Second
	defer func() { drainTimeout = oldDrain }()

	f0, f1 := twoRankFabrics(t)
	defer f1.Close() // f1 never reads nor writes: the half-open peer

	// Wedge the writer side: flood until the socket buffer, the link
	// queue and Send itself are all blocked.
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		payload := make([]byte, 1<<20)
		for f0.Send(0, 1, payload) == nil {
		}
	}()
	// And block a reader on the link no byte will ever arrive on.
	recvErr := make(chan error, 1)
	go func() {
		_, err := f0.Recv(1, 0)
		recvErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // let both sides wedge

	start := time.Now()
	closed := make(chan error, 1)
	go func() { closed <- f0.Close() }()

	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked recv got %v, want ErrClosed", err)
		}
		// The reader must not have waited for the wedged writer drain.
		if waited := time.Since(start); waited > drainTimeout/2 {
			t.Fatalf("blocked recv waited %v — it sat out the drain window", waited)
		}
	case <-time.After(2 * drainTimeout):
		t.Fatal("blocked recv never unblocked on Close")
	}
	select {
	case <-closed:
	case <-time.After(2 * drainTimeout):
		t.Fatal("Close did not return within the drain bound")
	}
	<-floodDone
}

// TestMidExchangePeerDeathQuantisedAllReduce is the mid-exchange death
// satellite: three single-rank fabrics run a framed quantised
// reduce-and-broadcast; rank 2 completes one exchange and then dies.
// The survivors block inside the second exchange until the failure
// detector's verdict (delivered here by hand via Abort) unblocks both
// with the same typed error — no panic, no goroutine leak — and a
// severed-socket variant surfaces as a transport error rather than a
// crash.
func TestMidExchangePeerDeathQuantisedAllReduce(t *testing.T) {
	before := runtime.NumGoroutine()
	errDead := errors.New("test: rank 2 declared dead")

	const k = 3
	conns := meshConns(t, k)
	fabs := make([]*RemoteFabric, k)
	for r := 0; r < k; r++ {
		f, err := NewRemoteFabric(r, k, conns[r])
		if err != nil {
			t.Fatal(err)
		}
		fabs[r] = f
	}

	codec, err := quant.Parse("qsgd4b512")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8192
	shape := quant.Shape{Rows: 64, Cols: 128}
	specs := []TensorSpec{{Name: "w", N: n, Wire: shape, Codec: codec}}
	rbs := make([]*ReduceBroadcast, k)
	for r := 0; r < k; r++ {
		rbs[r] = NewReduceBroadcastLocal(fabs[r], specs, 99, []int{r})
	}

	grads := make([][]float32, k)
	for r := range grads {
		grads[r] = make([]float32, n)
		for i := range grads[r] {
			grads[r][i] = float32(r+1) * 0.001
		}
	}

	// Exchange 1: everyone participates; must succeed.
	var wg sync.WaitGroup
	firstErrs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			firstErrs[r] = rbs[r].Reduce(r, 0, grads[r])
		}(r)
	}
	wg.Wait()
	for r, err := range firstErrs {
		if err != nil {
			t.Fatalf("healthy exchange failed on rank %d: %v", r, err)
		}
	}

	// Exchange 2: rank 2 never shows up. The survivors block inside the
	// exchange...
	type outcome struct {
		rank int
		err  error
	}
	results := make(chan outcome, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			results <- outcome{r, rbs[r].Reduce(r, 0, grads[r])}
		}(r)
	}
	time.Sleep(100 * time.Millisecond) // let both survivors block

	// ...until the death verdict aborts their fabrics (in the cluster
	// this is the health monitor's OnVerdict hook).
	fabs[0].Abort(errDead)
	fabs[1].Abort(errDead)

	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case out := <-results:
			if !errors.Is(out.err, errDead) {
				t.Fatalf("rank %d returned %v, want the typed death verdict", out.rank, out.err)
			}
		case <-deadline:
			t.Fatal("survivors did not unblock within the detection deadline")
		}
	}

	// Severed-socket variant: cut rank 0's remaining live link ends the
	// way a dying OS would and observe a clean transport error on a
	// fresh fabric pair — never a panic.
	a, b := pairConns(t)
	g0, err := NewRemoteFabric(0, 2, []net.Conn{nil, a})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := NewRemoteFabric(1, 2, []net.Conn{b, nil})
	if err != nil {
		t.Fatal(err)
	}
	b.Close() // rank 1's process dies
	if _, err := g0.Recv(1, 0); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("severed peer must surface a transport error, got %v", err)
	}
	g0.Close()
	g1.Close()

	fabs[2].Close()
	waitGoroutines(t, before)
}
