package comm

import (
	"sync"
	"testing"

	"repro/obs"
	"repro/quant"
)

// TestRemoteFabricPerPeerAccounting pins the satellite contract: the
// per-peer counters are the source of truth and the aggregate totals
// are their sums, header bytes excluded, payload counted on both ends.
func TestRemoteFabricPerPeerAccounting(t *testing.T) {
	f, err := NewTCPFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payloads := map[int][]byte{1: make([]byte, 100), 2: make([]byte, 37)}
	for to, p := range payloads {
		if err := f.Rank(0).Send(0, to, p); err != nil {
			t.Fatal(err)
		}
	}
	for to := range payloads {
		if _, err := f.Rank(to).Recv(0, to); err != nil {
			t.Fatal(err)
		}
	}

	r0 := f.Rank(0)
	if got := r0.PeerTraffic(1); got.TxBytes != 100 || got.TxFrames != 1 {
		t.Fatalf("rank0->1 traffic = %+v", got)
	}
	if got := r0.PeerTraffic(2); got.TxBytes != 37 || got.TxFrames != 1 {
		t.Fatalf("rank0->2 traffic = %+v", got)
	}
	if got := r0.PeerTraffic(0); got != (PeerTraffic{}) {
		t.Fatalf("self slot = %+v, want zero", got)
	}
	if r0.TotalBytes() != 137 || r0.TotalMessages() != 2 {
		t.Fatalf("aggregate = %d bytes / %d msgs, want 137/2",
			r0.TotalBytes(), r0.TotalMessages())
	}
	// Receivers account payload bytes (not the 4-byte header) per link.
	if got := f.Rank(1).PeerTraffic(0); got.RxBytes != 100 || got.RxFrames != 1 {
		t.Fatalf("rank1<-0 traffic = %+v", got)
	}
	if got := f.Rank(2).PeerTraffic(0); got.RxBytes != 37 || got.RxFrames != 1 {
		t.Fatalf("rank2<-0 traffic = %+v", got)
	}
}

// runTracedExchange reduces one tensor across k ranks of an in-process
// fabric with the given reducer factory and returns the recorded spans.
func runTracedExchange(t *testing.T, k int, build func(Transport) Reducer) []obs.Span {
	t.Helper()
	f := NewFabric(k)
	red := build(f)
	tr := obs.NewTracer(256)
	red.(Traceable).SetTracer(tr)
	tr.SetStep(5)

	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := make([]float32, 64)
			for i := range g {
				g[i] = float32(w + i)
			}
			if err := red.Reduce(w, 0, g); err != nil {
				t.Errorf("rank %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	return tr.Snapshot()
}

func TestReducerSpans(t *testing.T) {
	codec, err := quant.ByName("32bit")
	if err != nil {
		t.Fatal(err)
	}
	spec := []TensorSpec{{Name: "w", N: 64, Wire: quant.Shape{Rows: 1, Cols: 64}, Codec: codec}}
	cases := []struct {
		name  string
		build func(Transport) Reducer
		phase obs.Phase // codec-side phase the reducer must report
	}{
		{"reduce-broadcast", func(f Transport) Reducer { return NewReduceBroadcast(f, spec, 1) }, obs.PhaseQuantise},
		{"ring", func(f Transport) Reducer { return NewRing(f) }, obs.PhaseEncode},
		{"simulated-ring", func(f Transport) Reducer { return NewSimulatedRing(f, 0.5) }, obs.PhaseEncode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spans := runTracedExchange(t, 3, tc.build)
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}
			seen := map[obs.Phase]bool{}
			ranks := map[int]bool{}
			for _, s := range spans {
				seen[s.Phase] = true
				ranks[s.Rank] = true
				if s.Step != 5 {
					t.Fatalf("span step = %d, want 5 (from SetStep)", s.Step)
				}
				if s.DurNS < 0 || s.StartNS < 0 {
					t.Fatalf("negative timing in %+v", s)
				}
			}
			for _, want := range []obs.Phase{tc.phase, obs.PhaseTransfer, obs.PhaseDecode} {
				if !seen[want] {
					t.Errorf("no %v span; phases seen: %v", want, seen)
				}
			}
			if len(ranks) != 3 {
				t.Errorf("spans cover ranks %v, want all 3", ranks)
			}
			var xferBytes int64
			for _, s := range spans {
				if s.Phase == obs.PhaseTransfer {
					xferBytes += s.Bytes
				}
			}
			if xferBytes == 0 {
				t.Error("transfer spans carry no bytes")
			}
		})
	}
}

// TestReducerNilTracerInert: the default state must not record or
// misbehave — the digest-level inertness is pinned in parallel's
// TestObsDisabledDigestParity; this is the cheap structural check.
func TestReducerNilTracerInert(t *testing.T) {
	f := NewFabric(2)
	red := NewRing(f)
	red.SetTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := []float32{1, 2, 3, 4}
			if err := red.Reduce(w, 0, g); err != nil {
				t.Errorf("rank %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
}
