package tensor

import (
	"testing"

	"repro/rng"
)

// naiveConv computes convolution output directly from the definition, as
// an oracle for the im2col+GEMM path.
func naiveConv(c ConvShape, img, w []float32) []float32 {
	oh, ow := c.OutH(), c.OutW()
	out := make([]float32, c.OutC*oh*ow)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ic := 0; ic < c.InC; ic++ {
					for kh := 0; kh < c.KH; kh++ {
						for kw := 0; kw < c.KW; kw++ {
							iy := oy*c.StrideH - c.PadH + kh
							ix := ox*c.StrideW - c.PadW + kw
							if iy < 0 || iy >= c.InH || ix < 0 || ix >= c.InW {
								continue
							}
							wIdx := ((oc*c.InC+ic)*c.KH+kh)*c.KW + kw
							s += w[wIdx] * img[(ic*c.InH+iy)*c.InW+ix]
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

func TestConvShapeGeometry(t *testing.T) {
	c := ConvShape{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if c.OutH() != 8 || c.OutW() != 8 {
		t.Fatalf("same-padding geometry wrong: %dx%d", c.OutH(), c.OutW())
	}
	c2 := ConvShape{InC: 1, InH: 8, InW: 8, OutC: 1, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if c2.OutH() != 4 || c2.OutW() != 4 {
		t.Fatalf("strided geometry wrong: %dx%d", c2.OutH(), c2.OutW())
	}
}

func TestConvShapeValidate(t *testing.T) {
	bad := []ConvShape{
		{},
		{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 0, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
	good := ConvShape{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIm2colGEMMEqualsNaiveConv(t *testing.T) {
	r := rng.New(11)
	shapes := []ConvShape{
		{InC: 1, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 7, OutC: 3, KH: 3, KW: 2, StrideH: 2, StrideW: 2, PadH: 1, PadW: 0},
		{InC: 4, InH: 6, InW: 6, OutC: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
	}
	for si, c := range shapes {
		img := make([]float32, c.InC*c.InH*c.InW)
		for i := range img {
			img[i] = r.Norm(1)
		}
		w := make([]float32, c.OutC*c.PatchLen())
		for i := range w {
			w[i] = r.Norm(1)
		}
		cols := New(c.PatchLen(), c.OutH()*c.OutW())
		Im2col(c, img, cols)
		wMat := FromSlice(c.OutC, c.PatchLen(), w)
		out := New(c.OutC, c.OutH()*c.OutW())
		MatMul(out, wMat, cols)
		want := naiveConv(c, img, w)
		for i, v := range want {
			if !almostEqual(out.Data[i], v, 1e-3) {
				t.Fatalf("shape %d: element %d: got %v want %v", si, i, out.Data[i], v)
			}
		}
	}
}

// Property: col2im is the adjoint of im2col, i.e. <im2col(x), y> ==
// <x, col2im(y)> for all x, y. This is exactly the property backprop
// relies on.
func TestCol2imAdjointProperty(t *testing.T) {
	r := rng.New(12)
	c := ConvShape{InC: 2, InH: 6, InW: 6, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	for trial := 0; trial < 20; trial++ {
		x := make([]float32, c.InC*c.InH*c.InW)
		for i := range x {
			x[i] = r.Norm(1)
		}
		y := New(c.PatchLen(), c.OutH()*c.OutW())
		y.FillNorm(r, 1)

		cx := New(c.PatchLen(), c.OutH()*c.OutW())
		Im2col(c, x, cx)
		var lhs float64
		for i := range cx.Data {
			lhs += float64(cx.Data[i]) * float64(y.Data[i])
		}

		aty := make([]float32, len(x))
		Col2im(c, y, aty)
		var rhs float64
		for i := range x {
			rhs += float64(x[i]) * float64(aty[i])
		}
		if diff := lhs - rhs; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestCol2imAccumulates(t *testing.T) {
	c := ConvShape{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	src := New(1, 9)
	src.Fill(1)
	dst := make([]float32, 9)
	Col2im(c, src, dst)
	Col2im(c, src, dst)
	for _, v := range dst {
		if v != 2 {
			t.Fatalf("Col2im should accumulate, got %v", dst)
		}
	}
}

func TestIm2colZeroPadding(t *testing.T) {
	c := ConvShape{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := []float32{1, 2, 3, 4}
	cols := New(c.PatchLen(), c.OutH()*c.OutW())
	cols.Fill(99) // ensure padding really writes zeros
	Im2col(c, img, cols)
	// Top-left output position, kernel (0,0) looks at (-1,-1): must be 0.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padding not zeroed: %v", cols.At(0, 0))
	}
	// Kernel centre (1,1) at output (0,0) sees img(0,0)=1.
	if cols.At(4, 0) != 1 {
		t.Fatalf("centre tap wrong: %v", cols.At(4, 0))
	}
}

func BenchmarkIm2col(b *testing.B) {
	c := ConvShape{InC: 16, InH: 16, InW: 16, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := make([]float32, c.InC*c.InH*c.InW)
	dst := New(c.PatchLen(), c.OutH()*c.OutW())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2col(c, img, dst)
	}
}
