// Package tensor implements dense float32 matrices and the numerical
// kernels required by the neural-network substrate: matrix products
// (including transposed variants), element-wise operations, reductions,
// and the im2col/col2im transforms used by convolution layers.
//
// The package deliberately stays on float32: the paper's systems (CNTK on
// CUDA) train in single precision, and the quantisation codecs in
// internal/quant operate on float32 gradients. All kernels are written to
// be cache-friendly (row-major, k-inner loop GEMM) but make no attempt to
// use SIMD intrinsics or assembly: correctness and portability first.
package tensor

import (
	"fmt"
	"math"

	"repro/rng"
)

// Matrix is a dense, row-major float32 matrix. Element (i, j) lives at
// Data[i*Cols+j]. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix. It panics if either dimension is
// negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Len returns the number of elements.
func (m *Matrix) Len() int { return m.Rows * m.Cols }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src's contents into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// FillNorm fills m with draws from N(0, std²) using r.
func (m *Matrix) FillNorm(r *rng.RNG, std float32) {
	for i := range m.Data {
		m.Data[i] = r.Norm(std)
	}
}

// FillUniform fills m with draws from U[-a, a) using r.
func (m *Matrix) FillUniform(r *rng.RNG, a float32) {
	for i := range m.Data {
		m.Data[i] = (r.Float32()*2 - 1) * a
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add accumulates src into m element-wise. Shapes must match.
func (m *Matrix) Add(src *Matrix) {
	if m.Len() != src.Len() {
		panic("tensor: Add size mismatch")
	}
	for i, v := range src.Data {
		m.Data[i] += v
	}
}

// AddScaled accumulates a*src into m element-wise (axpy).
func (m *Matrix) AddScaled(a float32, src *Matrix) {
	if m.Len() != src.Len() {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range src.Data {
		m.Data[i] += a * v
	}
}

// Sum returns the sum of all elements (accumulated in float64 to limit
// rounding drift on large matrices).
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of the matrix viewed as a vector.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Row returns a view (no copy) of row i as a slice of length Cols.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// ArgMaxRow returns the column index of the largest value in row i.
func (m *Matrix) ArgMaxRow(i int) int {
	row := m.Row(i)
	best, bestV := 0, row[0]
	for j, v := range row {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// Equal reports whether m and other have identical shape and elements
// within tolerance eps.
func (m *Matrix) Equal(other *Matrix, eps float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// String renders a compact description (shape only, to keep logs sane).
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul computes dst = a × b. dst must be pre-allocated with shape
// a.Rows×b.Cols and must not alias a or b. It panics on shape mismatch.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulAddBias computes dst = a × b and then adds bias (a 1×b.Cols row
// vector) to every row of dst.
func MatMulAddBias(dst, a, b, bias *Matrix) {
	MatMul(dst, a, b)
	if bias.Len() != dst.Cols {
		panic("tensor: MatMulAddBias bias size mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
}

// MatMulTransA computes dst = aᵀ × b where a is stored untransposed.
// dst shape must be a.Cols×b.Cols.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)ᵀ*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : k*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : i*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes dst = a × bᵀ where b is stored untransposed.
// dst shape must be a.Rows×b.Rows.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%dx%d)*(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// Transpose returns a new matrix that is the transpose of m.
func Transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}
