package tensor

import "fmt"

// ConvShape describes a 2-D convolution over NCHW inputs. It carries the
// geometry needed by Im2col/Col2im and by the convolution layer in
// internal/nn.
type ConvShape struct {
	InC, InH, InW    int // input channels, height, width
	OutC             int // output channels (number of filters)
	KH, KW           int // kernel height, width
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (c ConvShape) OutH() int { return (c.InH+2*c.PadH-c.KH)/c.StrideH + 1 }

// OutW returns the output width.
func (c ConvShape) OutW() int { return (c.InW+2*c.PadW-c.KW)/c.StrideW + 1 }

// PatchLen returns the length of one im2col column: InC*KH*KW.
func (c ConvShape) PatchLen() int { return c.InC * c.KH * c.KW }

// Validate reports a descriptive error when the geometry is inconsistent.
func (c ConvShape) Validate() error {
	if c.InC <= 0 || c.InH <= 0 || c.InW <= 0 || c.OutC <= 0 {
		return fmt.Errorf("tensor: conv shape has non-positive dims: %+v", c)
	}
	if c.KH <= 0 || c.KW <= 0 || c.StrideH <= 0 || c.StrideW <= 0 {
		return fmt.Errorf("tensor: conv kernel/stride non-positive: %+v", c)
	}
	if c.PadH < 0 || c.PadW < 0 {
		return fmt.Errorf("tensor: conv negative padding: %+v", c)
	}
	if c.OutH() <= 0 || c.OutW() <= 0 {
		return fmt.Errorf("tensor: conv output empty: %+v", c)
	}
	return nil
}

// Im2col expands a single image (CHW layout, length InC*InH*InW) into the
// dst matrix with shape (InC*KH*KW) × (OutH*OutW): column p holds the
// receptive field of output position p. dst must be pre-allocated.
//
// This is the standard lowering that turns convolution into GEMM, the same
// strategy cuDNN uses for its GEMM-based algorithms.
func Im2col(c ConvShape, img []float32, dst *Matrix) {
	oh, ow := c.OutH(), c.OutW()
	if len(img) != c.InC*c.InH*c.InW {
		panic("tensor: Im2col image size mismatch")
	}
	if dst.Rows != c.PatchLen() || dst.Cols != oh*ow {
		panic("tensor: Im2col dst shape mismatch")
	}
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				row := ((ch*c.KH)+kh)*c.KW + kw
				drow := dst.Row(row)
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.StrideH - c.PadH + kh
					base := oy * ow
					if iy < 0 || iy >= c.InH {
						for ox := 0; ox < ow; ox++ {
							drow[base+ox] = 0
						}
						continue
					}
					irow := chOff + iy*c.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.StrideW - c.PadW + kw
						if ix < 0 || ix >= c.InW {
							drow[base+ox] = 0
						} else {
							drow[base+ox] = img[irow+ix]
						}
					}
				}
			}
		}
	}
}

// Col2im accumulates the columns of src (shape (InC*KH*KW) × (OutH*OutW))
// back into an image gradient (CHW layout). dst must be pre-zeroed by the
// caller when accumulation across calls is not desired.
func Col2im(c ConvShape, src *Matrix, dst []float32) {
	oh, ow := c.OutH(), c.OutW()
	if len(dst) != c.InC*c.InH*c.InW {
		panic("tensor: Col2im image size mismatch")
	}
	if src.Rows != c.PatchLen() || src.Cols != oh*ow {
		panic("tensor: Col2im src shape mismatch")
	}
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				row := ((ch*c.KH)+kh)*c.KW + kw
				srow := src.Row(row)
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.StrideH - c.PadH + kh
					if iy < 0 || iy >= c.InH {
						continue
					}
					irow := chOff + iy*c.InW
					base := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.StrideW - c.PadW + kw
						if ix >= 0 && ix < c.InW {
							dst[irow+ix] += srow[base+ox]
						}
					}
				}
			}
		}
	}
}
