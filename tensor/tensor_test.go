package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/rng"
)

func almostEqual(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// naiveMatMul is a straightforward triple loop used as a correctness
// oracle for the optimised kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.FillNorm(r, 1)
	return m
}

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %v", m)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestAtSet(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Data[5] != 5 {
		t.Fatal("row-major layout broken")
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {1, 10, 1}} {
		a := randMatrix(r, dims[0], dims[1])
		b := randMatrix(r, dims[1], dims[2])
		got := New(dims[0], dims[2])
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-4) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(2)
	a := randMatrix(r, 6, 4)
	b := randMatrix(r, 6, 5)
	got := New(4, 5)
	MatMulTransA(got, a, b)
	want := naiveMatMul(Transpose(a), b)
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(3)
	a := randMatrix(r, 6, 4)
	b := randMatrix(r, 5, 4)
	got := New(6, 5)
	MatMulTransB(got, a, b)
	want := naiveMatMul(a, Transpose(b))
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulAddBias(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 3, 4)
	b := randMatrix(r, 4, 2)
	bias := FromSlice(1, 2, []float32{10, -10})
	got := New(3, 2)
	MatMulAddBias(got, a, b, bias)
	want := naiveMatMul(a, b)
	for i := 0; i < 3; i++ {
		if !almostEqual(got.At(i, 0), want.At(i, 0)+10, 1e-4) ||
			!almostEqual(got.At(i, 1), want.At(i, 1)-10, 1e-4) {
			t.Fatal("bias not applied correctly")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	m := randMatrix(r, 7, 3)
	tt := Transpose(Transpose(m))
	if !m.Equal(tt, 0) {
		t.Fatal("transpose twice != identity")
	}
}

func TestAddAndAddScaled(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	a.Add(b)
	if a.Data[0] != 5 || a.Data[2] != 9 {
		t.Fatal("Add wrong")
	}
	a.AddScaled(-1, b)
	if a.Data[0] != 1 || a.Data[2] != 3 {
		t.Fatal("AddScaled wrong")
	}
}

func TestScaleZeroFill(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	m.Scale(2)
	if m.Data[1] != 4 {
		t.Fatal("Scale wrong")
	}
	m.Fill(7)
	if m.Data[0] != 7 || m.Data[2] != 7 {
		t.Fatal("Fill wrong")
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestNorm2AndMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float32{3, -4, 0, 0})
	if !almostEqual(float32(m.Norm2()), 5, 1e-6) {
		t.Fatalf("Norm2 = %v", m.Norm2())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 9, 2, -5, -1, -2})
	if m.ArgMaxRow(0) != 1 || m.ArgMaxRow(1) != 1 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone aliases parent")
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := r.Fork(uint64(seed))
		m := 1 + rr.Intn(8)
		k := 1 + rr.Intn(8)
		n := 1 + rr.Intn(8)
		a := randMatrix(rr, m, k)
		b := randMatrix(rr, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		left := Transpose(ab)
		right := naiveMatMul(Transpose(b), Transpose(a))
		return left.Equal(right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix product is linear in its first argument.
func TestMatMulLinearityProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint16) bool {
		rr := r.Fork(uint64(seed))
		m, k, n := 1+rr.Intn(6), 1+rr.Intn(6), 1+rr.Intn(6)
		a1 := randMatrix(rr, m, k)
		a2 := randMatrix(rr, m, k)
		b := randMatrix(rr, k, n)
		sum := a1.Clone()
		sum.Add(a2)
		lhs := New(m, n)
		MatMul(lhs, sum, b)
		p1, p2 := New(m, n), New(m, n)
		MatMul(p1, a1, b)
		MatMul(p2, a2, b)
		p1.Add(p2)
		return lhs.Equal(p1, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64Accumulation(t *testing.T) {
	m := New(1, 1000000)
	m.Fill(0.1)
	if got := m.Sum(); math.Abs(got-100000) > 1 {
		t.Fatalf("Sum drifted: %v", got)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := randMatrix(r, 128, 128)
	bb := randMatrix(r, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, bb)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	r := rng.New(1)
	a := randMatrix(r, 128, 128)
	bb := randMatrix(r, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransA(dst, a, bb)
	}
}
