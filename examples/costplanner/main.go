// Costplanner is the budget-aware training planner the paper's §5.4
// sketches ("an automatic management system that is both budget-aware
// and error tolerance-aware"): given a dollar budget, it uses the
// calibrated performance model to pick the network, EC2 instance, GPU
// count and gradient precision that maximise accuracy within budget.
//
// Run with:
//
//	go run ./examples/costplanner -budget 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	budget := flag.Float64("budget", 1000, "training budget in dollars")
	flag.Parse()

	t := report.New(
		fmt.Sprintf("cheapest full-recipe training per network (budget $%.0f)", *budget),
		"network", "top1_%", "instance", "gpus", "precision", "hours", "cost_$", "within_budget")
	var best *harness.CostAccuracyRow
	for _, net := range []workload.Network{workload.AlexNet, workload.ResNet50, workload.ResNet152} {
		row, err := harness.CheapestTraining(net)
		if err != nil {
			log.Fatal(err)
		}
		ok := "no"
		if row.CostDollars <= *budget {
			ok = "yes"
			if best == nil || row.Top1 > best.Top1 {
				r := row
				best = &r
			}
		}
		t.Addf("%s\t%.1f\t%s\t%d\t%s\t%.0f\t%.0f\t%s",
			row.Network, row.Top1, row.Instance, row.GPUs, row.Precision,
			row.TrainHours, row.CostDollars, ok)
	}
	t.Render(os.Stdout)

	if best == nil {
		fmt.Printf("\nNo network trains to its published accuracy within $%.0f; AlexNet is the cheapest entry point.\n", *budget)
		return
	}
	fmt.Printf("\nRecommendation: train %s on %s (%d GPU(s), %s) for ≈$%.0f → %.1f%% top-1.\n",
		best.Network, best.Instance, best.GPUs, best.Precision, best.CostDollars, best.Top1)
}
