// Speechlstm reproduces the paper's Figure 5(e) finding at laptop
// scale: recurrent (LSTM) speech-style models tolerate even the most
// aggressive gradient quantisation — classic 1bitSGD trains the
// AN4-like task to the same accuracy as 32-bit while moving a fraction
// of the bytes.
//
// Run with:
//
//	go run ./examples/speechlstm
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	study, err := harness.RunSequenceAccuracy(harness.AccuracyOptions{Epochs: 15})
	if err != nil {
		log.Fatal(err)
	}
	study.Table().Render(os.Stdout)
	study.CurvesTable().Render(os.Stdout)

	fp := study.Find("32bit")
	ob := study.Find("1bitSGD")
	if fp == nil || ob == nil {
		log.Fatal("missing curves")
	}
	saved := 1 - float64(ob.History.TotalWireBytes)/float64(fp.History.TotalWireBytes)
	fmt.Printf("\n1bitSGD matched full precision within %.1f accuracy points while cutting gradient traffic by %.0f%%\n",
		100*(fp.History.BestAccuracy-ob.History.BestAccuracy), 100*saved)
}
