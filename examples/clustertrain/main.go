// Command clustertrain demonstrates multi-process training through the
// lpsgd facade: run the same binary once per rank and the ranks
// rendezvous, negotiate a gradient codec, and train over a dialled TCP
// mesh. On one machine:
//
//	go run ./examples/clustertrain -rank 0 &
//	go run ./examples/clustertrain -rank 1 &
//	go run ./examples/clustertrain -rank 2 &
//	wait
//
// Across machines, point -addr at the coordinator's host:port and give
// each machine its rank. Every rank must use the same seed and batch
// size — the replicas start bit-identical and the synchronous exchange
// keeps them that way, which each rank verifies at the end by printing
// the same final accuracy.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/health"
	"repro/lpsgd"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7071", "coordinator rendezvous address")
		rank  = flag.Int("rank", 0, "this process's rank")
		world = flag.Int("world", 3, "total number of processes")
	)
	flag.Parse()

	train, test := lpsgd.SyntheticImages(10, 512, 256, 3)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 48, 10),
		lpsgd.WithCluster(*addr, *rank, *world),
		// Advertise a preference ladder of precision policies — a mixed
		// per-layer scheme first, then plain codecs; the session settles
		// on the cheapest one every rank accepts, floored at "32bit".
		lpsgd.WithAcceptedPolicies("qsgd4b512;*.b=32bit", "qsgd4b512", "qsgd8b512", "1bit*64"),
		// Health plane: a rank silent for 2 s (pinged every 250 ms over
		// its control link) is declared dead, every survivor's Run
		// returns the same health.ErrPeerDead, and the handler gets a
		// chance to alert before this process decides what to do.
		lpsgd.WithHeartbeat(250*time.Millisecond, 2*time.Second),
		lpsgd.WithHealthHandler(func(err error) {
			log.Printf("health verdict: %v — aborting this rank's exchange", err)
		}),
		lpsgd.WithBatchSize(96),
		lpsgd.WithEpochs(8),
		lpsgd.WithLearningRate(0.1),
		lpsgd.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	policy := trainer.Policy().Name()
	fmt.Printf("rank %d/%d training with negotiated policy %s\n",
		trainer.Rank(), trainer.World(), policy)

	h, err := trainer.Run(train, test)
	var dead health.ErrPeerDead
	if errors.As(err, &dead) {
		// A peer died mid-run: every surviving rank lands here with the
		// same verdict, within ~2x the heartbeat timeout of the death.
		log.Fatalf("rank %d/%d aborted: rank %d died (last heard %s ago); restart the cluster",
			trainer.Rank(), trainer.World(), dead.Rank,
			time.Since(dead.LastSeen).Round(time.Millisecond))
	}
	if err != nil {
		log.Fatal(err)
	}
	// The health plane's heartbeats double as straggler telemetry: every
	// rank knows which peer gated the synchronous barrier.
	if s := trainer.StepStats(); s.Slowest >= 0 {
		fmt.Printf("rank %d/%d: slowest rank last step was %d (compute %v, exchange %v)\n",
			trainer.Rank(), trainer.World(), s.Slowest,
			s.Compute[s.Slowest].Round(time.Microsecond),
			s.Exchange[s.Slowest].Round(time.Microsecond))
	}
	fmt.Printf("rank %d/%d: final accuracy %.2f%% over %s (%.1f kB on the wire from this rank)\n",
		trainer.Rank(), trainer.World(), 100*h.FinalAccuracy, policy,
		float64(h.TotalWireBytes)/1e3)
}
