// Command clustertrain demonstrates multi-process training through the
// lpsgd facade: run the same binary once per rank and the ranks
// rendezvous, negotiate a gradient codec, and train over a dialled TCP
// mesh. On one machine:
//
//	go run ./examples/clustertrain -rank 0 &
//	go run ./examples/clustertrain -rank 1 &
//	go run ./examples/clustertrain -rank 2 &
//	wait
//
// Across machines, point -addr at the coordinator's host:port and give
// each machine its rank. Every rank must use the same seed and batch
// size — the replicas start bit-identical and the synchronous exchange
// keeps them that way, which each rank verifies at the end by printing
// the same final accuracy.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/lpsgd"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7071", "coordinator rendezvous address")
		rank  = flag.Int("rank", 0, "this process's rank")
		world = flag.Int("world", 3, "total number of processes")
	)
	flag.Parse()

	train, test := lpsgd.SyntheticImages(10, 512, 256, 3)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 48, 10),
		lpsgd.WithCluster(*addr, *rank, *world),
		// Advertise a preference ladder of precision policies — a mixed
		// per-layer scheme first, then plain codecs; the session settles
		// on the cheapest one every rank accepts, floored at "32bit".
		lpsgd.WithAcceptedPolicies("qsgd4b512;*.b=32bit", "qsgd4b512", "qsgd8b512", "1bit*64"),
		lpsgd.WithBatchSize(96),
		lpsgd.WithEpochs(8),
		lpsgd.WithLearningRate(0.1),
		lpsgd.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	policy := trainer.Policy().Name()
	fmt.Printf("rank %d/%d training with negotiated policy %s\n",
		trainer.Rank(), trainer.World(), policy)

	h, err := trainer.Run(train, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d/%d: final accuracy %.2f%% over %s (%.1f kB on the wire from this rank)\n",
		trainer.Rank(), trainer.World(), 100*h.FinalAccuracy, policy,
		float64(h.TotalWireBytes)/1e3)
}
