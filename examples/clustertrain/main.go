// Command clustertrain demonstrates multi-process training through the
// lpsgd facade: run the same binary once per rank and the ranks
// rendezvous, negotiate a gradient codec, and train over a dialled TCP
// mesh. On one machine:
//
//	go run ./examples/clustertrain -rank 0 &
//	go run ./examples/clustertrain -rank 1 &
//	go run ./examples/clustertrain -rank 2 &
//	wait
//
// Across machines, point -addr at the coordinator's host:port and give
// each machine its rank. Every rank must use the same seed and batch
// size — the replicas start bit-identical and the synchronous exchange
// keeps them that way, which each rank verifies at the end by printing
// the same final accuracy.
//
// The session here is elastic (WithElastic): if one rank dies mid-run,
// the survivors hold a rejoin barrier open instead of aborting, and a
// replacement launched with -rejoin takes the dead rank's slot,
// receives the training state from a surviving donor, and the run
// completes as if nothing happened:
//
//	go run ./examples/clustertrain -rank 1 -rejoin
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/cluster"
	"repro/elastic"
	"repro/health"
	"repro/lpsgd"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7071", "coordinator rendezvous address")
		rank   = flag.Int("rank", 0, "this process's rank")
		world  = flag.Int("world", 3, "total number of processes")
		rejoin = flag.Bool("rejoin", false, "replace a dead rank of the running session")
	)
	flag.Parse()

	train, test := lpsgd.SyntheticImages(10, 512, 256, 3)

	// A replacement re-enters through the rejoin barrier instead of the
	// fresh rendezvous, and restores the donor's snapshot before Run —
	// the facade path is the same from there on.
	var membership lpsgd.Option
	var restore *elastic.Snapshot
	if *rejoin {
		sess, snap, err := cluster.Rejoin(cluster.Config{
			Addr: *addr, Rank: *rank, World: *world,
			Accept:  []string{"qsgd4b512;*.b=32bit", "qsgd4b512", "qsgd8b512", "1bit*64"},
			Health:  health.Config{Interval: 250 * time.Millisecond, Timeout: 2 * time.Second},
			Timeout: 60 * time.Second,
		})
		if err != nil {
			log.Fatalf("rejoin: %v", err)
		}
		log.Printf("rank %d rejoined at generation %d, resuming from step %d",
			sess.Rank(), sess.Generation(), snap.Step)
		membership, restore = lpsgd.WithClusterSession(sess), snap
	} else {
		membership = lpsgd.WithCluster(*addr, *rank, *world)
	}

	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 48, 10),
		membership,
		// Elastic session: a death verdict opens a one-minute rejoin
		// barrier (coordinator-governed) instead of killing the run;
		// this process tolerates up to 2 repairs.
		lpsgd.WithElastic(2, time.Minute),
		// Advertise a preference ladder of precision policies — a mixed
		// per-layer scheme first, then plain codecs; the session settles
		// on the cheapest one every rank accepts, floored at "32bit".
		lpsgd.WithAcceptedPolicies("qsgd4b512;*.b=32bit", "qsgd4b512", "qsgd8b512", "1bit*64"),
		// Health plane: a rank silent for 2 s (pinged every 250 ms over
		// its control link) is declared dead, every survivor's Run
		// returns the same health.ErrPeerDead, and the handler gets a
		// chance to alert before this process decides what to do.
		lpsgd.WithHeartbeat(250*time.Millisecond, 2*time.Second),
		lpsgd.WithHealthHandler(func(err error) {
			log.Printf("health verdict: %v — aborting this rank's exchange", err)
		}),
		lpsgd.WithBatchSize(96),
		lpsgd.WithEpochs(8),
		lpsgd.WithLearningRate(0.1),
		lpsgd.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	if restore != nil {
		if err := trainer.Restore(restore); err != nil {
			log.Fatal(err)
		}
	}

	policy := trainer.Policy().Name()
	fmt.Printf("rank %d/%d training with negotiated policy %s\n",
		trainer.Rank(), trainer.World(), policy)

	h, err := trainer.Run(train, test)
	var dead health.ErrPeerDead
	if errors.As(err, &dead) {
		// With elasticity on, landing here means the repair failed too:
		// the rejoin window closed without a replacement (or the budget
		// is spent). Every surviving rank gets the same verdict.
		log.Fatalf("rank %d/%d aborted: rank %d died (last heard %s ago) and no replacement arrived; restart the cluster",
			trainer.Rank(), trainer.World(), dead.Rank,
			time.Since(dead.LastSeen).Round(time.Millisecond))
	}
	if err != nil {
		log.Fatal(err)
	}
	// The health plane's heartbeats double as straggler telemetry: every
	// rank knows which peer gated the synchronous barrier.
	if s := trainer.StepStats(); s.Slowest >= 0 {
		fmt.Printf("rank %d/%d: slowest rank last step was %d (compute %v, exchange %v)\n",
			trainer.Rank(), trainer.World(), s.Slowest,
			s.Compute[s.Slowest].Round(time.Microsecond),
			s.Exchange[s.Slowest].Round(time.Microsecond))
	}
	fmt.Printf("rank %d/%d: final accuracy %.2f%% over %s (%.1f kB on the wire from this rank)\n",
		trainer.Rank(), trainer.World(), 100*h.FinalAccuracy, policy,
		float64(h.TotalWireBytes)/1e3)
}
