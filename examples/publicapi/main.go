// Publicapi demonstrates the library's external surface end to end,
// importing only the public packages repro/lpsgd and repro/quant:
//
//  1. a trainer assembled with functional options, with the gradient
//     codec chosen by name through the quant.Parse grammar and the
//     gradients moving over real loopback TCP sockets;
//  2. the self-describing framed wire format: one peer encodes with
//     Encoder.EncodeTo, the other decodes with quant.DecodeAny from a
//     raw TCP connection — no shared codec configuration anywhere.
//
// Run with:
//
//	go run ./examples/publicapi
package main

import (
	"fmt"
	"log"
	"net"

	"repro/lpsgd"
	"repro/quant"
)

func main() {
	// --- 1. Train with a named codec over the TCP transport. ---
	train, test := lpsgd.SyntheticImages(4, 384, 192, 7)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 48, 4),
		lpsgd.WithCodec("qsgd4b512"),
		lpsgd.WithWorkers(2),
		lpsgd.WithTransport(lpsgd.TCP),
		lpsgd.WithBatchSize(64),
		lpsgd.WithEpochs(6),
		lpsgd.WithLearningRate(0.08),
		lpsgd.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	h, err := trainer.Run(train, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained over TCP with qsgd4b512: accuracy %.1f%%, wire %.2f MB, replicas in sync: %v\n",
		100*h.FinalAccuracy, float64(h.TotalWireBytes)/1e6, trainer.ReplicasInSync())

	// --- 2. Framed wire bytes across a raw TCP connection. ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	decoded := make(chan int, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		total := 0
		// The receiver knows nothing about the sender's codec choices:
		// each frame announces its own codec, shape and element count.
		for i := 0; i < 3; i++ {
			vals, err := quant.DecodeAny(conn)
			if err != nil {
				log.Fatal(err)
			}
			total += len(vals)
		}
		decoded <- total
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	shape := quant.Shape{Rows: 64, Cols: 64}
	n := shape.Len()
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32(i%31) - 15
	}
	for _, name := range []string{"1bit*64", "qsgd8b512", "topk0.05"} {
		codec, err := quant.Parse(name)
		if err != nil {
			log.Fatal(err)
		}
		wrote, err := codec.NewEncoder(n, shape, 3).EncodeTo(conn, grad)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sent %-10s frame: %5d bytes for %d values (%.1f× compression)\n",
			name, wrote, n, float64(4*n)/float64(wrote))
	}
	fmt.Printf("receiver decoded %d values with no shared codec config\n", <-decoded)
}
