// Quickstart: train a small classifier with 4-bit quantised gradient
// exchange across 4 simulated GPUs and compare the wire volume against
// full precision.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/rng"
)

func main() {
	// A synthetic image-classification task (stands in for CIFAR-10).
	train, test := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 1, H: 8, W: 8,
		TrainN: 512, TestN: 256, Noise: 0.8, Seed: 42,
	})

	// A small MLP; any architecture built from the nn package works.
	model := func(r *rng.RNG) *nn.Network {
		return nn.MustNetwork(
			nn.NewDense("hidden", 64, 48, r),
			nn.NewReLU("relu"),
			nn.NewDense("out", 48, 4, r),
		)
	}

	run := func(codec core.Codec, label string) {
		h, err := core.TrainQuantised(core.TrainOptions{
			Model: model, Train: train, Test: test,
			Codec:   codec,
			Workers: 4, BatchSize: 64, Epochs: 10, LR: 0.08, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s final accuracy %5.1f%%   gradient traffic %6.1f MB\n",
			label, 100*h.FinalAccuracy, float64(h.TotalWireBytes)/1e6)
	}

	run(core.FullPrecision(), "32-bit full precision")
	run(core.QSGD(4, 512), "QSGD 4-bit (b=512)")
	run(core.OneBitSGDReshaped(64), "1bitSGD* (d=64)")
}
