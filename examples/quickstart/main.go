// Quickstart: train a small classifier with 4-bit quantised gradient
// exchange across 4 simulated GPUs and compare the wire volume against
// full precision — entirely through the public lpsgd facade: codecs are
// selected by name (quant.Parse grammar) and nothing is hand-wired.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/lpsgd"
)

func main() {
	// A synthetic image-classification task (stands in for CIFAR-10):
	// single-channel 8×8 images, so the MLP below takes 64 inputs.
	train, test := lpsgd.SyntheticImages(4, 512, 256, 42)

	run := func(codecName, label string) {
		trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 48, 4),
			lpsgd.WithCodec(codecName),
			lpsgd.WithWorkers(4),
			lpsgd.WithBatchSize(64),
			lpsgd.WithEpochs(10),
			lpsgd.WithLearningRate(0.08),
			lpsgd.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		h, err := trainer.Run(train, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s final accuracy %5.1f%%   gradient traffic %6.1f MB\n",
			label, 100*h.FinalAccuracy, float64(h.TotalWireBytes)/1e6)
	}

	run("32bit", "32-bit full precision")
	run("qsgd4b512", "QSGD 4-bit (b=512)")
	run("1bit*64", "1bitSGD* (d=64)")
}
