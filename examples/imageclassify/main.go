// Imageclassify reproduces the spirit of the paper's Figure 5(a)–(d) at
// laptop scale: a convolutional classifier trained with synchronous
// data-parallel SGD across 4 simulated GPUs under every gradient
// precision the paper studies, showing that 1bitSGD and QSGD 4/8-bit
// match full precision while 2-bit QSGD and large 1bitSGD* buckets
// degrade.
//
// Run with:
//
//	go run ./examples/imageclassify            # quick (~30 s)
//	go run ./examples/imageclassify -full      # sharper curves
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "longer, sharper configuration")
	ext := flag.Bool("ext", false, "compare the extension codecs (2-norm/uniform/exponential QSGD, sparse top-k) instead of the paper ladder")
	flag.Parse()

	opts := harness.AccuracyOptions{Epochs: 12}
	if *full {
		opts = harness.AccuracyOptions{Epochs: 30, TrainN: 2048, TestN: 768}
	}
	if *ext {
		opts.Codecs = harness.ExtensionCodecs()
	}
	study, err := harness.RunImageAccuracy(opts)
	if err != nil {
		log.Fatal(err)
	}
	study.Table().Render(os.Stdout)
	study.CurvesTable().Render(os.Stdout)
	study.ConvergenceTable(0.9).Render(os.Stdout)
}
