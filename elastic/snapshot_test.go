package elastic

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seed:         17,
		World:        3,
		Policy:       "qsgd4b512;*.b=32bit",
		Step:         421,
		Epoch:        6,
		Batch:        2,
		ShuffleState: 0xdeadbeefcafef00d,
		Momentum:     0.9,
		WeightDecay:  0.0005,
		Params:       []byte("LPSGD\x00\x00\x01fake-checkpoint-bytes"),
		Velocity:     [][]float32{{1, -2, 3.5}, {}, {0.25}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := sampleSnapshot()
	var buf bytes.Buffer
	if err := in.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after decode", buf.Len())
	}
}

func TestSnapshotRoundTripEdgeCursor(t *testing.T) {
	// Batch -1 (no batch completed yet in the epoch) must survive the
	// offset-by-one wire encoding.
	in := sampleSnapshot()
	in.Batch = -1
	in.Velocity = nil
	var buf bytes.Buffer
	if err := in.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batch != -1 {
		t.Fatalf("batch cursor %d, want -1", out.Batch)
	}
}

func TestSnapshotEncodeRejectsOversize(t *testing.T) {
	s := sampleSnapshot()
	s.Policy = strings.Repeat("x", 256)
	if err := s.EncodeTo(&bytes.Buffer{}); err == nil {
		t.Fatal("overlong policy must not encode")
	}
	s = sampleSnapshot()
	s.Batch = -2
	if err := s.EncodeTo(&bytes.Buffer{}); err == nil {
		t.Fatal("batch below -1 must not encode")
	}
}

func TestSnapshotReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXY"),
		"truncated": {byte('L'), byte('P'), byte('S'), byte('E'), 1, 7},
	}
	// A wrong version must be named, not guessed at.
	bad := []byte{byte('L'), byte('P'), byte('S'), byte('E'), 99}
	cases["future version"] = bad
	for name, wire := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(wire)); err == nil {
			t.Errorf("%s: decoded successfully, want an error", name)
		}
	}
}

// TestSnapshotReadBoundsAllocations: a snapshot announcing a huge
// model checkpoint over a tiny stream must fail on the stream, fast,
// without allocating the announced size.
func TestSnapshotReadBoundsAllocations(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// The params length field sits right before the params payload;
	// corrupt it to the cap (within bounds, but far beyond the stream).
	idx := bytes.Index(wire, []byte("LPSGD"))
	binary.LittleEndian.PutUint32(wire[idx-4:], maxSnapshotParams)
	done := make(chan error, 1)
	go func() {
		_, err := ReadSnapshot(bytes.NewReader(wire))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("truncated oversize snapshot decoded successfully")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversize length field wedged the reader")
	}
}

// FuzzReadSnapshot mirrors quant's decoder fuzzing: arbitrary bytes
// must produce an error or a snapshot — never a panic, an index error
// or an attacker-sized allocation.
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleSnapshot().EncodeTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LPSE"))
	f.Add(append([]byte{byte('L'), byte('P'), byte('S'), byte('E'), 1}, make([]byte, 64)...))
	f.Fuzz(func(t *testing.T, wire []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("ReadSnapshot panicked: %v", p)
			}
		}()
		s, err := ReadSnapshot(bytes.NewReader(wire))
		if err == nil && s == nil {
			t.Fatal("nil snapshot without an error")
		}
	})
}

func TestConfigResolved(t *testing.T) {
	r := Config{Enable: true}.Resolved()
	if r.RejoinWindow != DefaultRejoinWindow || r.MaxRejoins != DefaultMaxRejoins {
		t.Fatalf("defaults not filled: %+v", r)
	}
	r = Config{Enable: true, RejoinWindow: 1500 * time.Microsecond, MaxRejoins: -1}.Resolved()
	if r.RejoinWindow != 2*time.Millisecond || r.MaxRejoins != -1 {
		t.Fatalf("rounding/cap wrong: %+v", r)
	}
	if d := (Config{}).Resolved(); d.Enable || d.RejoinWindow != 0 {
		t.Fatalf("disabled config grew settings: %+v", d)
	}
}
