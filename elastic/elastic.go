// Package elastic makes a synchronous training cluster survivable: it
// defines the versioned session-state snapshot a replacement rank
// needs to take over a dead rank's slot mid-run, and the contract
// (Rejoiner) through which the training engine, the cluster runtime
// and the snapshot mechanics cooperate without import cycles.
//
// PR 4's health plane turned a rank death into a prompt coordinated
// abort — every survivor unblocks with the same typed
// health.ErrPeerDead — but the whole cluster still died with one
// process. Elastic sessions make that verdict recoverable: survivors
// quiesce at the step barrier their abort unwound to, the coordinator
// re-opens the rendezvous for one rejoin round (rendezvous
// ProtocolVersion 4 accepts `rejoin` hellos), a replacement process
// claims the dead rank's slot, the mesh and control links are
// re-established, a donor rank streams a Snapshot to every rank whose
// state is behind, and training resumes.
//
// # Exact resume
//
// The headline guarantee is bit-identical digests versus an
// uninterrupted run of the same seed and policy. Three properties make
// that possible:
//
//   - Replicated state is replicated. Weights, momentum velocity, the
//     step/epoch/batch counters and the epoch's data order are
//     identical on every rank by the synchronous-SGD invariant, so any
//     survivor can donate them. The Snapshot carries them all; the
//     data-shard cursor (Epoch, Batch) plus ShuffleState pin the exact
//     position in the epoch's batch permutation.
//   - Per-rank stochastic streams are step-keyed, not cumulative. In
//     an elastic session the aggregation layer reseeds every
//     stochastic encoder from (seed, rank, tensor, stripe, step) at
//     each step barrier (comm.ReduceBroadcast.BeginStep), so a
//     replacement reconstructs exactly the stream the dead rank would
//     have used, and a survivor whose aborted half-step consumed draws
//     simply re-enters the step. No RNG bytes need to cross the wire —
//     the snapshot's counters are the stream state. (Non-elastic runs
//     keep the paper's original cumulative streams; enabling
//     elasticity is the one switch that changes, reproducibly, which
//     random draws a quantised run sees.)
//   - Survivors can be at most one step apart (a synchronous exchange
//     cannot complete anywhere until every rank contributed), so the
//     donor — any rank holding the maximum completed step — defines
//     the resume point and everyone behind installs its snapshot.
//
// Error-feedback codecs (1bitSGD, top-k) carry data-dependent
// residuals that die with the process; a rejoin under such a policy
// still converges — the residuals reset to zero on every rank at the
// rejoin barrier, keeping replicas in lockstep — but the run is no
// longer bit-identical to an uninterrupted one. Exact resume is
// guaranteed for policies whose codecs are residual-free (32bit and
// the QSGD family).
package elastic

import (
	"time"

	"repro/comm"
	"repro/health"
)

// DefaultRejoinWindow bounds how long the cluster holds the rejoin
// barrier open for a replacement before giving up and surfacing the
// original death verdict.
const DefaultRejoinWindow = 60 * time.Second

// DefaultMaxRejoins is the per-process rejoin budget when Config leaves
// it zero: how many rejoin rounds one trainer tolerates before a
// further death is fatal.
const DefaultMaxRejoins = 3

// Config tunes elastic sessions. Like the health plane's settings, the
// coordinator's values govern the whole cluster: whether elasticity is
// on at all, and how long the rejoin window stays open, ride in the
// rendezvous welcome so every rank holds the same policy. MaxRejoins
// is local to each process.
type Config struct {
	// Enable turns elastic sessions on. Requires the health plane: the
	// failure detector's verdict is what triggers a rejoin round.
	Enable bool
	// RejoinWindow bounds one rejoin round — from the death verdict to
	// full re-membership, state transfer included (default
	// DefaultRejoinWindow). If the window expires before a replacement
	// claims the dead slot, the original verdict stands and the
	// survivors fail as PR 4's abort protocol always did.
	RejoinWindow time.Duration
	// MaxRejoins caps how many rejoin rounds this process participates
	// in before a further death verdict is surfaced instead of repaired
	// (default DefaultMaxRejoins). Negative disables the cap.
	MaxRejoins int
}

// Resolved returns the config with defaults filled in. The window is
// rounded to whole milliseconds — the granularity it travels at in the
// rendezvous welcome.
func (c Config) Resolved() Config {
	if !c.Enable {
		return Config{MaxRejoins: c.MaxRejoins}
	}
	if c.RejoinWindow <= 0 {
		c.RejoinWindow = DefaultRejoinWindow
	}
	if c.RejoinWindow = c.RejoinWindow.Round(time.Millisecond); c.RejoinWindow < time.Millisecond {
		c.RejoinWindow = time.Millisecond
	}
	if c.MaxRejoins == 0 {
		c.MaxRejoins = DefaultMaxRejoins
	}
	return c
}

// LocalState is what one rank brings to a rejoin round: its completed
// step count and the callbacks the protocol uses to move state. The
// trainer supplies it; the cluster runtime consumes it.
type LocalState struct {
	// Step is the number of synchronous steps this rank has fully
	// applied. A replacement that holds no state reports -1.
	Step int64
	// Snapshot captures the local session state. The protocol invokes
	// it on the donor — the rank whose Step is the resume point — after
	// the new mesh is up.
	Snapshot func() (*Snapshot, error)
	// Install replaces the local session state with a received
	// snapshot. The protocol invokes it on every rank whose Step is
	// behind the resume point, the replacement included.
	Install func(*Snapshot) error
}

// Outcome is a successful rejoin round: the rebuilt transport plane
// and where training resumes.
type Outcome struct {
	// Fabric is the re-established data mesh for this rank.
	Fabric *comm.RemoteFabric
	// Monitor is the re-established health plane watching the new
	// mesh, already started, with its verdict wired into Fabric.Abort.
	Monitor *health.Monitor
	// Generation counts completed rejoin rounds of the session, 1-based
	// after the first repair.
	Generation int
	// ResumeStep is the agreed global step count training resumes
	// after: the maximum completed step any survivor reported.
	ResumeStep int64
	// Installed is the snapshot this rank received and installed, nil
	// when the local state was already at ResumeStep (donors and
	// in-sync survivors).
	Installed *Snapshot
}

// Rejoiner repairs a training session after a peer-death verdict. The
// cluster session implements it (rendezvous ProtocolVersion 4); the
// trainer calls it when Config.Enable allowed the verdict to be
// treated as recoverable. Rejoin blocks for up to the session's rejoin
// window and returns the rebuilt plane, or an error if the world could
// not be made whole — in which case the caller surfaces the original
// verdict.
type Rejoiner interface {
	Rejoin(verdict error, local LocalState) (*Outcome, error)
}
