package elastic

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file defines the session-state snapshot wire format: the one
// message a donor rank streams to every rank that must catch up during
// a rejoin round. Little-endian, magic-tagged and versioned, in the
// same spirit as the quant frame and rendezvous formats:
//
//	snapshot:
//	  uint32  magic "LPSE"
//	  uint8   format version (currently 1)
//	  uint64  experiment seed
//	  uint32  world size
//	  uint8   policy length, then the canonical policy string
//	  uint64  completed synchronous steps
//	  uint32  cursor epoch
//	  uint32  last completed batch index within the epoch, offset by
//	          one (0 = none yet, i.e. Batch -1)
//	  uint64  shuffle RNG state at the start of the cursor epoch
//	  float32 momentum, float32 weight decay
//	  uint32  model checkpoint length, then the nn.Network.Save bytes
//	  uint32  velocity tensor count, then per tensor uint32 element
//	          count + elements as float32 bits
//
// The model weights travel as an embedded nn checkpoint — the same
// bytes Trainer.SaveCheckpoint writes — so the restoring side gets the
// decoder's full name/shape validation for free. Velocity tensors are
// positional (the optimiser's parameter order), validated against the
// restored network by the installer.
type Snapshot struct {
	// Seed is the experiment seed the session trains under. A snapshot
	// restores only into a trainer configured with the same seed: the
	// seed keys the data order and every stochastic stream.
	Seed uint64
	// World is the session's world size.
	World int
	// Policy is the canonical spelling of the session's negotiated
	// precision policy.
	Policy string
	// Step counts the synchronous steps fully applied to this state.
	Step int64
	// Epoch and Batch are the data-shard cursor: Batch is the index of
	// the last completed batch within Epoch (-1 before the first), in
	// the epoch's full batch list including any short tail.
	Epoch int
	Batch int
	// ShuffleState is the shared shuffle RNG's state at the start of
	// Epoch — replaying the epoch's permutation from it reproduces the
	// exact batch order the cursor indexes into.
	ShuffleState uint64
	// Momentum and WeightDecay are the optimiser hyperparameters the
	// state was produced under; installers reject a mismatch rather
	// than silently blending two training regimes.
	Momentum    float32
	WeightDecay float32
	// Params is the model checkpoint (nn.Network.Save format).
	Params []byte
	// Velocity is the optimiser's momentum buffer per parameter, in
	// parameter order.
	Velocity [][]float32
}

const (
	// snapshotMagic tags snapshot messages ("LPSE").
	snapshotMagic uint32 = 'L' | 'P'<<8 | 'S'<<16 | 'E'<<24

	// SnapshotVersion is the snapshot format version this build writes.
	SnapshotVersion = 1

	// maxSnapshotParams bounds the embedded model checkpoint (256 MiB)
	// so a corrupted length field cannot make the reader allocate
	// unbounded memory.
	maxSnapshotParams = 256 << 20
	// maxSnapshotTensors and maxSnapshotElems bound the velocity
	// section the same way.
	maxSnapshotTensors = 1 << 16
	maxSnapshotElems   = 64 << 20
)

// EncodeTo writes the snapshot as one self-describing message.
func (s *Snapshot) EncodeTo(w io.Writer) error {
	if len(s.Policy) > 255 {
		return fmt.Errorf("elastic: policy %q exceeds the 255-byte wire limit", s.Policy)
	}
	if len(s.Params) > maxSnapshotParams {
		return fmt.Errorf("elastic: model checkpoint of %d bytes exceeds cap %d", len(s.Params), maxSnapshotParams)
	}
	if len(s.Velocity) > maxSnapshotTensors {
		return fmt.Errorf("elastic: %d velocity tensors exceed cap %d", len(s.Velocity), maxSnapshotTensors)
	}
	if s.Batch < -1 {
		return fmt.Errorf("elastic: batch cursor %d below -1", s.Batch)
	}
	buf := binary.LittleEndian.AppendUint32(nil, snapshotMagic)
	buf = append(buf, SnapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.World))
	buf = append(buf, byte(len(s.Policy)))
	buf = append(buf, s.Policy...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Epoch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Batch+1))
	buf = binary.LittleEndian.AppendUint64(buf, s.ShuffleState)
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(s.Momentum))
	buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(s.WeightDecay))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Params)))
	buf = append(buf, s.Params...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Velocity)))
	for _, v := range s.Velocity {
		if len(v) > maxSnapshotElems {
			return fmt.Errorf("elastic: velocity tensor of %d elements exceeds cap %d", len(v), maxSnapshotElems)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		for _, x := range v {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		}
	}
	_, err := w.Write(buf)
	return err
}

// ReadSnapshot decodes one snapshot message from r. It validates magic,
// version and every length field against hard caps before allocating,
// so arbitrary or truncated bytes yield an error — never a panic or an
// attacker-sized allocation.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("elastic: snapshot header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != snapshotMagic {
		return nil, fmt.Errorf("elastic: bad snapshot magic %#x", got)
	}
	if v := hdr[4]; v != SnapshotVersion {
		return nil, fmt.Errorf("elastic: snapshot format version %d, this build speaks %d", v, SnapshotVersion)
	}
	var s Snapshot
	var fixed [13]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("elastic: snapshot identity: %w", err)
	}
	s.Seed = binary.LittleEndian.Uint64(fixed[0:])
	s.World = int(binary.LittleEndian.Uint32(fixed[8:]))
	policy := make([]byte, fixed[12])
	if _, err := io.ReadFull(r, policy); err != nil {
		return nil, fmt.Errorf("elastic: snapshot policy: %w", err)
	}
	s.Policy = string(policy)
	var cur [28]byte
	if _, err := io.ReadFull(r, cur[:]); err != nil {
		return nil, fmt.Errorf("elastic: snapshot cursor: %w", err)
	}
	s.Step = int64(binary.LittleEndian.Uint64(cur[0:]))
	s.Epoch = int(binary.LittleEndian.Uint32(cur[8:]))
	s.Batch = int(binary.LittleEndian.Uint32(cur[12:])) - 1
	s.ShuffleState = binary.LittleEndian.Uint64(cur[16:])
	s.Momentum = math.Float32frombits(binary.LittleEndian.Uint32(cur[24:]))
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:8]); err != nil {
		return nil, fmt.Errorf("elastic: snapshot hyperparameters: %w", err)
	}
	s.WeightDecay = math.Float32frombits(binary.LittleEndian.Uint32(tail[0:]))
	paramsLen := int(binary.LittleEndian.Uint32(tail[4:]))
	if paramsLen > maxSnapshotParams {
		return nil, fmt.Errorf("elastic: snapshot announces a %d-byte model checkpoint, cap is %d", paramsLen, maxSnapshotParams)
	}
	params, err := readChunked(r, paramsLen, "model checkpoint")
	if err != nil {
		return nil, err
	}
	s.Params = params
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("elastic: snapshot velocity count: %w", err)
	}
	tensors := int(binary.LittleEndian.Uint32(cnt[:]))
	if tensors > maxSnapshotTensors {
		return nil, fmt.Errorf("elastic: snapshot announces %d velocity tensors, cap is %d", tensors, maxSnapshotTensors)
	}
	for i := 0; i < tensors; i++ {
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return nil, fmt.Errorf("elastic: velocity tensor %d length: %w", i, err)
		}
		n := int(binary.LittleEndian.Uint32(cnt[:]))
		if n > maxSnapshotElems {
			return nil, fmt.Errorf("elastic: velocity tensor %d announces %d elements, cap is %d", i, n, maxSnapshotElems)
		}
		raw, err := readChunked(r, 4*n, fmt.Sprintf("velocity tensor %d", i))
		if err != nil {
			return nil, err
		}
		v := make([]float32, n)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		s.Velocity = append(s.Velocity, v)
	}
	return &s, nil
}

// readChunked reads exactly n announced bytes, growing the buffer in
// bounded chunks so a corrupted length field fails on the (truncated)
// stream instead of allocating the announced size up front.
func readChunked(r io.Reader, n int, what string) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("elastic: snapshot %s: %w", what, err)
		}
	}
	return buf, nil
}
